// Deterministic chaos-soak harness for stateful failover
// (docs/robustness.md, "Chaos soak").
//
// RunChaosScenario derives a randomized fault timeline — wireless link
// flaps plus an unplanned primary-gateway crash — purely from a sim::Random
// seed, runs bulk transfers through the failover topology, and returns the
// determinism witnesses: the applied-fault log, a recovery-metric snapshot,
// and the bytes every stream delivered. Two runs with the same options must
// produce bit-for-bit identical witnesses (chaos_soak_test, the CI `chaos`
// job); every stream must complete despite the faults.
//
// Fault shape (all values drawn from the seed):
//  - the crash lands in [4s, 8s), mid-transfer;
//  - 2-4 flaps of the primary wireless link, 100-400ms each, strictly
//    before the crash. The wireless flaps stress the data path without
//    touching the checkpoint path, so the standby watchdog only ever fires
//    for the real crash.
#ifndef COMMA_CORE_CHAOS_H_
#define COMMA_CORE_CHAOS_H_

#include <string>
#include <vector>

#include "src/core/failover_system.h"

namespace comma::core {

struct ChaosOptions {
  uint64_t seed = 1;
  uint32_t streams = 2;             // Sinks on ports 80, 81, ...
  // Sized so the transfers (sharing a 1 Mbit/s wireless link) are still in
  // flight when the crash lands anywhere in its [4s, 8s) window.
  uint32_t bytes_per_stream = 400'000;
  bool crash = true;                // false = flaps only, no takeover.
  sim::Duration horizon = 120 * sim::kSecond;
  // Epoch-loop knobs (docs/parallel-sim.md): split the FA side of the
  // topology into its own region and run with this many workers. The
  // witnesses must be bit-identical for any worker count at a fixed
  // partitioning (parallel_determinism_test).
  bool partition_regions = false;
  int num_workers = 1;
};

struct ChaosStreamOutcome {
  uint16_t port = 0;
  uint64_t bytes = 0;
  bool complete = false;
  sim::TimePoint last_byte_at = 0;
};

struct ChaosResult {
  // --- Determinism witnesses (byte-compared across same-seed runs) ---
  std::string fault_log;  // FaultPlan::AppliedLog().
  std::string metrics;    // "sp.recovery.*" + "mip.*" snapshot at the horizon.
  // --- Outcome ---
  bool all_completed = false;
  std::vector<ChaosStreamOutcome> streams;
  uint64_t streams_restored = 0;
  uint64_t streams_rebuilt = 0;
  uint64_t pre_crash_streams = 0;
  sim::TimePoint crash_at = 0;
  sim::TimePoint takeover_at = 0;
  sim::TimePoint finished_at = 0;  // Last byte of the last stream.
};

ChaosResult RunChaosScenario(const ChaosOptions& options);

}  // namespace comma::core

#endif  // COMMA_CORE_CHAOS_H_

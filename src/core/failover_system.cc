#include "src/core/failover_system.h"

#include "src/filters/standard_set.h"
#include "src/obs/eem_bridge.h"
#include "src/util/check.h"

namespace comma::core {

FailoverSystem::FailoverSystem(const FailoverConfig& config)
    : config_(config), scenario_(config.scenario) {
  util::SetDebugChecks(config.debug_checks);
  // Both proxies, the checkpoint pair, and the EEM live on the FA routers,
  // so their timers belong to the fa region when partitioned.
  sim::ScopedRegion in_fa(&scenario_.sim(), scenario_.fa_region());
  proxy::FilterRegistry registry = filters::StandardRegistry();
  if (config_.extend_registry) {
    config_.extend_registry(registry);
  }
  sp1_ = std::make_unique<proxy::ServiceProxy>(&scenario_.fa1_router(), registry);
  sp2_ = std::make_unique<proxy::ServiceProxy>(&scenario_.fa2_router(), std::move(registry));
  handoff_.RegisterProxy(scenario_.fa1_addr(), sp1_.get());
  handoff_.RegisterProxy(scenario_.fa2_addr(), sp2_.get());

  proxy::CheckpointManagerConfig mgr_config;
  mgr_config.standby = scenario_.fa2_addr();
  mgr_config.interval = config_.checkpoint_interval;
  ckpt_manager_ = std::make_unique<proxy::CheckpointManager>(
      sp1_.get(), &scenario_.fa1_router().tcp(), mgr_config);

  proxy::CheckpointReceiverConfig recv_config;
  recv_config.watchdog = config_.watchdog;
  ckpt_receiver_ = std::make_unique<proxy::CheckpointReceiver>(
      &scenario_.fa2_router().tcp(), recv_config, &sp2_->metrics());
  ckpt_receiver_->set_on_primary_dead([this] { TakeOver(); });

  RegisterMobileIpMetrics(*sp2_);
  if (config_.start_eem) {
    StartEemOn(scenario_.fa1_router(), *sp1_);
  }
}

FailoverSystem::~FailoverSystem() = default;

void FailoverSystem::Start() {
  sim::ScopedRegion in_fa(&scenario_.sim(), scenario_.fa_region());
  ckpt_receiver_->Listen();
  ckpt_manager_->Start();
  scenario_.MoveToForeign1();
}

void FailoverSystem::ScheduleGatewayCrash(sim::TimePoint when) {
  fault_plan_.At(when, "gateway-crash fa1", [this] { CrashPrimary(); });
}

void FailoverSystem::CrashPrimary() {
  if (recovery_.crashed) {
    return;
  }
  recovery_.crashed = true;
  recovery_.crash_at = sim().Now();
  recovery_.pre_crash_streams = sp1_->streams().size();
  recovery_.pre_crash_services = sp1_->services().size();
  // Sever the gateway from the world first — packets in flight on its links
  // are lost, exactly like pulling the plug on a real box.
  scenario_.backhaul1().SetUp(false);
  scenario_.wireless1().SetUp(false);
  // Then tear down everything that ran on it. Nothing tells the standby:
  // its watchdog has to notice the silence.
  ckpt_manager_.reset();
  if (sp1_ != nullptr) {
    sp1_->set_eem(nullptr);
  }
  eem_server_.reset();
  eem_client_.reset();
  handoff_.UnregisterProxy(scenario_.fa1_addr());
  sp1_.reset();
}

void FailoverSystem::TakeOver() {
  if (recovery_.taken_over) {
    return;
  }
  recovery_.taken_over = true;
  recovery_.takeover_at = sim().Now();

  // 1. Rebuild the proxy from the last replicated checkpoint.
  if (ckpt_receiver_->has_checkpoint()) {
    recovery_.restore =
        mobileip::ProxyHandoffManager::RestoreFromCheckpoint(ckpt_receiver_->latest(), *sp2_);
  }

  obs::MetricRegistry& reg = sp2_->metrics();
  reg.GetCounter("sp.recovery.takeovers")->Inc();
  reg.GetCounter("sp.recovery.streams_restored")->Inc(recovery_.restore.streams_restored);
  reg.GetCounter("sp.recovery.streams_rebuilt")->Inc(recovery_.restore.streams_rebuilt);
  reg.GetCounter("sp.recovery.services_failed")->Inc(recovery_.restore.services_failed);
  reg.GetCounter("sp.recovery.state_imported")->Inc(recovery_.restore.state_imported);
  reg.GetCounter("sp.recovery.state_rebuilt")->Inc(recovery_.restore.state_rebuilt);
  if (recovery_.crashed) {
    reg.GetGauge("sp.recovery.detection_latency_us")
        ->Set(static_cast<double>(recovery_.takeover_at - recovery_.crash_at));
  }

  // 2. Mobile IP re-registers the mobile through the backup FA; the HA
  // re-tunnels and the restored services see the stream again.
  scenario_.MoveToForeign2();

  // 3. The EEM comes back on the standby and the bridge re-registers the
  // (standby) proxy metrics as EEM variables.
  if (config_.start_eem) {
    StartEemOn(scenario_.fa2_router(), *sp2_);
  }

  if (on_takeover_) {
    on_takeover_();
  }
}

void FailoverSystem::StartEemOn(Host& host, proxy::ServiceProxy& sp) {
  eem_server_ = std::make_unique<monitor::EemServer>(&host, config_.eem);
  eem_server_->AddProvider(std::make_unique<obs::EemMetricsBridge>(&sp.metrics()));
  eem_client_ = std::make_unique<monitor::EemClient>(&host);
  sp.set_eem(eem_client_.get());
}

void FailoverSystem::RegisterMobileIpMetrics(proxy::ServiceProxy& sp) {
  // Pull-model exports (docs/observability.md): closures capture `this`; the
  // registry lives inside `sp`, which this object owns, so they cannot be
  // read after destruction.
  obs::MetricRegistry& reg = sp.metrics();
  reg.RegisterCounterSource("mip.solicitations_sent",
                            [this] { return scenario_.client().stats().solicitations_sent; });
  reg.RegisterCounterSource("mip.registrations_sent",
                            [this] { return scenario_.client().stats().registrations_sent; });
  reg.RegisterCounterSource("mip.registrations_accepted",
                            [this] { return scenario_.client().stats().registrations_accepted; });
  reg.RegisterCounterSource("mip.registrations_denied",
                            [this] { return scenario_.client().stats().registrations_denied; });
  reg.RegisterCounterSource("mip.handoffs", [this] { return handoff_.stats().handoffs; });
  reg.RegisterCounterSource("mip.services_transferred",
                            [this] { return handoff_.stats().services_transferred; });
  reg.RegisterCounterSource("mip.services_failed",
                            [this] { return handoff_.stats().services_failed; });
  reg.RegisterCounterSource("mip.state_transferred",
                            [this] { return handoff_.stats().state_transferred; });
  reg.RegisterCounterSource("mip.state_rebuilt",
                            [this] { return handoff_.stats().state_rebuilt; });
  reg.RegisterGaugeSource("mip.last_handoff_latency_us", [this] {
    return static_cast<double>(scenario_.client().stats().last_handoff_latency);
  });
}

}  // namespace comma::core

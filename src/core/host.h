// A Host is a Node with transport stacks attached — the "wired host" and
// "wireless host" endpoints of Fig. 1.1.
#ifndef COMMA_CORE_HOST_H_
#define COMMA_CORE_HOST_H_

#include <memory>
#include <string>

#include "src/core/ping.h"
#include "src/net/node.h"
#include "src/tcp/tcp_stack.h"
#include "src/udp/udp_stack.h"

namespace comma::core {

class Host : public net::Node {
 public:
  Host(sim::Simulator* sim, std::string name, sim::Random rng)
      : net::Node(sim, std::move(name)),
        tcp_(std::make_unique<tcp::TcpStack>(this, rng)),
        udp_(std::make_unique<udp::UdpStack>(this)),
        icmp_(std::make_unique<IcmpResponder>(this)) {}

  tcp::TcpStack& tcp() { return *tcp_; }
  udp::UdpStack& udp() { return *udp_; }
  // Every host answers pings; a component installing its own ICMP handler
  // (e.g. a Pinger) should chain requests back to this responder.
  IcmpResponder& icmp_responder() { return *icmp_; }

 private:
  std::unique_ptr<tcp::TcpStack> tcp_;
  std::unique_ptr<udp::UdpStack> udp_;
  std::unique_ptr<IcmpResponder> icmp_;
};

}  // namespace comma::core

#endif  // COMMA_CORE_HOST_H_

// Multi-gateway topology for the partitioned simulator: N wireless clusters
// (thesis Fig. 1.1, replicated) joined by a backbone router.
//
//   wired-host k ──wired── gateway k ──wireless── mobile k      (region k+1)
//                             │
//                          backbone link (cross-region, 5 ms lookahead)
//                             │
//                       backbone router                          (region 0)
//
// Each cluster is one region; only the gateway↔backbone links cross region
// boundaries, so their propagation delay is the PDES lookahead
// (docs/parallel-sim.md). Per-cluster traffic is one heavy local bulk
// transfer (wired-host k → mobile k, port 80) plus one cross-cluster bulk
// (wired-host k+1 → mobile k, port 81) that exercises the backbone; each
// gateway optionally runs a Service Proxy with the tcp filter on its
// mobile's streams, and a scripted per-cluster fault plan flaps the
// wireless link. This is the 4-gateway scenario bench_parallel scales
// across worker counts and parallel_determinism_test diffs witnesses on.
#ifndef COMMA_CORE_MULTI_GATEWAY_H_
#define COMMA_CORE_MULTI_GATEWAY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/bulk.h"
#include "src/core/host.h"
#include "src/net/link.h"
#include "src/proxy/service_proxy.h"
#include "src/sim/fault_plan.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace comma::core {

struct MultiGatewayConfig {
  int clusters = 4;
  uint64_t seed = 42;
  sim::SimulatorOptions sim;
  net::LinkConfig wired = net::WiredLinkConfig();
  net::LinkConfig wireless = net::WirelessLinkConfig();
  net::LinkConfig backbone = net::BackboneLinkConfig();
  // A Service Proxy (tcp filter) on every gateway, tapping its mobile.
  bool with_proxy = true;
  // Scripted per-cluster wireless flaps (seed-derived, region-internal).
  bool with_flaps = false;
  size_t local_bytes = 120'000;  // wired-host k → mobile k, port 80.
  size_t cross_bytes = 40'000;   // wired-host k+1 → mobile k, port 81.
};

class MultiGatewayScenario {
 public:
  explicit MultiGatewayScenario(const MultiGatewayConfig& config = {});
  ~MultiGatewayScenario();
  MultiGatewayScenario(const MultiGatewayScenario&) = delete;
  MultiGatewayScenario& operator=(const MultiGatewayScenario&) = delete;

  sim::Simulator& sim() { return sim_; }
  int clusters() const { return config_.clusters; }
  Host& backbone_router() { return *backbone_; }
  Host& wired_host(int k) { return *clusters_[static_cast<size_t>(k)].wired_host; }
  Host& gateway(int k) { return *clusters_[static_cast<size_t>(k)].gateway; }
  Host& mobile_host(int k) { return *clusters_[static_cast<size_t>(k)].mobile; }
  net::Link& wireless_link(int k) { return *clusters_[static_cast<size_t>(k)].wireless_link; }
  net::Link& backbone_link(int k) { return *clusters_[static_cast<size_t>(k)].backbone_link; }
  sim::RegionId cluster_region(int k) const { return clusters_[static_cast<size_t>(k)].region; }
  net::Ipv4Address mobile_addr(int k) const;

  // Constructs the senders/sinks (idempotent; call once before Run).
  void StartTraffic();
  bool AllCompleted() const;

  // --- Determinism witnesses (docs/parallel-sim.md) ---
  // Per-cluster applied-fault logs, in cluster order.
  std::string FaultLog() const;
  // One line per stream: bytes, payload hash, completion time.
  std::string StreamWitness() const;
  // Per-link tx/rx/drop counters, in fixed order.
  std::string LinkStatsWitness() const;
  // The combined witness the harness and bench hash/diff.
  std::string Witness() const;

 private:
  struct Cluster {
    sim::RegionId region = sim::kMainRegion;
    std::unique_ptr<Host> wired_host;
    std::unique_ptr<Host> gateway;
    std::unique_ptr<Host> mobile;
    std::unique_ptr<net::Link> wired_link;
    std::unique_ptr<net::Link> wireless_link;
    std::unique_ptr<net::Link> backbone_link;
    std::unique_ptr<proxy::ServiceProxy> sp;
    std::unique_ptr<sim::FaultPlan> faults;
    std::unique_ptr<apps::BulkSink> local_sink;
    std::unique_ptr<apps::BulkSink> cross_sink;
    std::unique_ptr<apps::BulkSender> local_sender;
    std::unique_ptr<apps::BulkSender> cross_sender;
  };

  MultiGatewayConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<Host> backbone_;
  std::vector<Cluster> clusters_;
  bool traffic_started_ = false;
};

}  // namespace comma::core

#endif  // COMMA_CORE_MULTI_GATEWAY_H_

#include "src/core/comma_system.h"

#include "src/obs/eem_bridge.h"
#include "src/util/check.h"

namespace comma::core {

CommaSystem::CommaSystem(const CommaSystemConfig& config)
    : config_(config), scenario_(config.scenario), catalog_(filters::StandardCatalog()) {
  util::SetDebugChecks(config.debug_checks);
  // Everything the system adds lives on the gateway (or mobile) side of the
  // topology, so all of its timers/events belong to the wireless region
  // when the scenario is partitioned (a no-op otherwise).
  sim::ScopedRegion in_wireless(&sim(), scenario_.wireless_region());
  sp_ = std::make_unique<proxy::ServiceProxy>(&scenario_.gateway(),
                                              filters::StandardRegistry(config.load_filters));
  sp_->set_catalog(&catalog_);
  RegisterSystemMetrics();
  if (config.start_command_server) {
    command_server_ =
        std::make_unique<proxy::CommandServer>(&scenario_.gateway().tcp(), sp_.get());
  }
  if (config.start_eem) {
    eem_server_ = std::make_unique<monitor::EemServer>(&scenario_.gateway(), config.eem);
    proxy_eem_client_ = std::make_unique<monitor::EemClient>(&scenario_.gateway());
    sp_->set_eem(proxy_eem_client_.get());
    BridgeMetricsIntoEem();
  }
}

void CommaSystem::RegisterSystemMetrics() {
  // Pull-model exports of counters that already exist elsewhere in the
  // system (docs/observability.md). All closures capture `this`: the proxy
  // (and its registry) is owned by this object, so they cannot outlive it.
  // Null-checks guard the windows where a subsystem is down (EEM outage).
  obs::MetricRegistry& reg = sp_->metrics();
  tcp::TcpStack* stack = &scenario_.gateway().tcp();
  reg.RegisterCounterSource("tcp.segments_sent",
                            [stack] { return stack->Totals().segments_sent; });
  reg.RegisterCounterSource("tcp.segments_received",
                            [stack] { return stack->Totals().segments_received; });
  reg.RegisterCounterSource("tcp.bytes_retransmitted",
                            [stack] { return stack->Totals().bytes_retransmitted; });
  reg.RegisterCounterSource("tcp.retransmit_timeouts",
                            [stack] { return stack->Totals().retransmit_timeouts; });
  reg.RegisterCounterSource("tcp.fast_retransmits",
                            [stack] { return stack->Totals().fast_retransmits; });
  reg.RegisterCounterSource("tcp.dupacks_received",
                            [stack] { return stack->Totals().dupacks_received; });
  reg.RegisterCounterSource("tcp.checksum_failures",
                            [stack] { return stack->checksum_failures(); });
  reg.RegisterGaugeSource("tcp.active_connections", [stack] {
    return static_cast<double>(stack->ActiveConnections());
  });
  reg.RegisterCounterSource("eem.client.retransmits", [this] {
    return proxy_eem_client_ ? proxy_eem_client_->retransmits() : 0;
  });
  reg.RegisterCounterSource("eem.client.lease_refreshes", [this] {
    return proxy_eem_client_ ? proxy_eem_client_->lease_refreshes() : 0;
  });
  reg.RegisterCounterSource("eem.client.stale_reads", [this] {
    return proxy_eem_client_ ? proxy_eem_client_->stale_reads() : 0;
  });
  reg.RegisterCounterSource("eem.client.registers_sent", [this] {
    return proxy_eem_client_ ? proxy_eem_client_->registers_sent() : 0;
  });
  reg.RegisterCounterSource("eem.client.notifies_received", [this] {
    return proxy_eem_client_ ? proxy_eem_client_->notifies_received() : 0;
  });
  reg.RegisterCounterSource("eem.server.notifies_sent", [this] {
    return eem_server_ ? eem_server_->notifies_sent() : 0;
  });
  reg.RegisterCounterSource("eem.server.updates_sent", [this] {
    return eem_server_ ? eem_server_->updates_sent() : 0;
  });
  reg.RegisterCounterSource("eem.server.leases_expired", [this] {
    return eem_server_ ? eem_server_->leases_expired() : 0;
  });
  reg.RegisterGaugeSource("eem.server.registrations", [this] {
    return eem_server_ ? static_cast<double>(eem_server_->RegistrationCount()) : 0.0;
  });
  // Epoch-loop telemetry (docs/parallel-sim.md). epochs/cross_region_events
  // are deterministic; barrier_wait_us is wall clock, so determinism
  // witnesses must filter it out (testing::FilterWallClockMetrics).
  sim::Simulator* simulator = &sim();
  reg.RegisterCounterSource("sim.epochs", [simulator] { return simulator->epochs(); });
  reg.RegisterCounterSource("sim.cross_region_events",
                            [simulator] { return simulator->cross_region_events(); });
  reg.RegisterCounterSource("sim.barrier_wait_us",
                            [simulator] { return simulator->barrier_wait_us(); });
  reg.RegisterCounterSource("sim.critical_path_events",
                            [simulator] { return simulator->critical_path_events(); });
}

void CommaSystem::BridgeMetricsIntoEem() {
  if (eem_server_ == nullptr) {
    return;
  }
  // Every proxy metric becomes an EEM variable: Kati (or any EEM client) can
  // register (id, attr) watches on "ttsf.bytes_dropped" and friends, closing
  // the thesis's control loop over quantitative proxy state.
  eem_server_->AddProvider(std::make_unique<obs::EemMetricsBridge>(&sp_->metrics()));
}

std::unique_ptr<kati::Shell> CommaSystem::MakeKati(kati::Shell::OutputSink sink) {
  sim::ScopedRegion in_wireless(&sim(), scenario_.wireless_region());
  return std::make_unique<kati::Shell>(&scenario_.mobile_host(),
                                       scenario_.gateway_wireless_addr(), std::move(sink));
}

void CommaSystem::ScheduleLinkFlap(net::Link& link, sim::TimePoint from, sim::TimePoint until,
                                   const std::string& label) {
  net::Link* l = &link;
  fault_plan_.Window(from, until, "link-flap " + label, [l] { l->SetUp(false); },
                     [l] { l->SetUp(true); });
}

void CommaSystem::ScheduleEemOutage(sim::TimePoint from, sim::TimePoint until) {
  fault_plan_.Window(from, until, "eem-outage", [this] { StopEemServer(); },
                     [this] { RestartEemServer(); });
}

void CommaSystem::ScheduleGatewayCrash(sim::TimePoint from, sim::TimePoint until) {
  fault_plan_.Window(
      from, until, "gateway-crash",
      [this] {
        scenario_.wired_link().SetUp(false);
        scenario_.wireless_link().SetUp(false);
        StopEemServer();
      },
      [this] {
        scenario_.wired_link().SetUp(true);
        scenario_.wireless_link().SetUp(true);
        RestartEemServer();
      });
}

void CommaSystem::StopEemServer() { eem_server_.reset(); }

void CommaSystem::RestartEemServer() {
  if (eem_server_ != nullptr || !config_.start_eem) {
    return;
  }
  // A restarted server is state-less: no registrations survive. Clients
  // recover on their own through lease refreshes and register retransmits.
  eem_server_ = std::make_unique<monitor::EemServer>(&scenario_.gateway(), config_.eem);
  BridgeMetricsIntoEem();  // The fresh instance serves proxy metrics too.
}

proxy::ServiceProxy& CommaSystem::MobileProxy() {
  if (mobile_sp_ == nullptr) {
    sim::ScopedRegion in_wireless(&sim(), scenario_.wireless_region());
    mobile_sp_ = std::make_unique<proxy::ServiceProxy>(
        &scenario_.mobile_host(), filters::StandardRegistry(config_.load_filters));
    mobile_sp_->set_catalog(&catalog_);
  }
  return *mobile_sp_;
}

}  // namespace comma::core

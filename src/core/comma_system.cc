#include "src/core/comma_system.h"

#include "src/util/check.h"

namespace comma::core {

CommaSystem::CommaSystem(const CommaSystemConfig& config)
    : config_(config), scenario_(config.scenario), catalog_(filters::StandardCatalog()) {
  util::SetDebugChecks(config.debug_checks);
  sp_ = std::make_unique<proxy::ServiceProxy>(&scenario_.gateway(),
                                              filters::StandardRegistry(config.load_filters));
  sp_->set_catalog(&catalog_);
  if (config.start_command_server) {
    command_server_ =
        std::make_unique<proxy::CommandServer>(&scenario_.gateway().tcp(), sp_.get());
  }
  if (config.start_eem) {
    eem_server_ = std::make_unique<monitor::EemServer>(&scenario_.gateway(), config.eem);
    proxy_eem_client_ = std::make_unique<monitor::EemClient>(&scenario_.gateway());
    sp_->set_eem(proxy_eem_client_.get());
  }
}

std::unique_ptr<kati::Shell> CommaSystem::MakeKati(kati::Shell::OutputSink sink) {
  return std::make_unique<kati::Shell>(&scenario_.mobile_host(),
                                       scenario_.gateway_wireless_addr(), std::move(sink));
}

void CommaSystem::ScheduleLinkFlap(net::Link& link, sim::TimePoint from, sim::TimePoint until,
                                   const std::string& label) {
  net::Link* l = &link;
  fault_plan_.Window(from, until, "link-flap " + label, [l] { l->SetUp(false); },
                     [l] { l->SetUp(true); });
}

void CommaSystem::ScheduleEemOutage(sim::TimePoint from, sim::TimePoint until) {
  fault_plan_.Window(from, until, "eem-outage", [this] { StopEemServer(); },
                     [this] { RestartEemServer(); });
}

void CommaSystem::ScheduleGatewayCrash(sim::TimePoint from, sim::TimePoint until) {
  fault_plan_.Window(
      from, until, "gateway-crash",
      [this] {
        scenario_.wired_link().SetUp(false);
        scenario_.wireless_link().SetUp(false);
        StopEemServer();
      },
      [this] {
        scenario_.wired_link().SetUp(true);
        scenario_.wireless_link().SetUp(true);
        RestartEemServer();
      });
}

void CommaSystem::StopEemServer() { eem_server_.reset(); }

void CommaSystem::RestartEemServer() {
  if (eem_server_ != nullptr || !config_.start_eem) {
    return;
  }
  // A restarted server is state-less: no registrations survive. Clients
  // recover on their own through lease refreshes and register retransmits.
  eem_server_ = std::make_unique<monitor::EemServer>(&scenario_.gateway(), config_.eem);
}

proxy::ServiceProxy& CommaSystem::MobileProxy() {
  if (mobile_sp_ == nullptr) {
    mobile_sp_ = std::make_unique<proxy::ServiceProxy>(
        &scenario_.mobile_host(), filters::StandardRegistry(config_.load_filters));
    mobile_sp_->set_catalog(&catalog_);
  }
  return *mobile_sp_;
}

}  // namespace comma::core

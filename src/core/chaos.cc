#include "src/core/chaos.h"

#include <algorithm>
#include <memory>

#include "src/apps/bulk.h"
#include "src/sim/random.h"

namespace comma::core {

namespace {

// All services launched on new streams toward the mobile. tdrop at 0% keeps
// the TTSF sequence map byte-exact (no transforms ever submitted), so a
// stream restored from even a slightly stale checkpoint resynchronizes
// immediately — the soak proves the recovery plumbing under randomized
// timing, while FaultRecovery* tests cover real transformed state.
std::vector<std::string> LauncherServices(uint64_t seed) {
  return {"tcp", "ttsf", "tdrop:0:" + std::to_string(seed)};
}

}  // namespace

ChaosResult RunChaosScenario(const ChaosOptions& options) {
  sim::Random rng(options.seed);

  FailoverConfig config;
  config.scenario.seed = options.seed;
  config.scenario.partition_regions = options.partition_regions;
  config.scenario.sim.num_workers = options.num_workers;
  FailoverSystem system(config);
  sim::Simulator& sim = system.sim();

  // --- Derive the fault timeline from the seed ---
  // The crash lands mid-transfer; flaps of the primary wireless link end
  // well before it (the link is about to die for good anyway, and flaps
  // must not mask the crash from the data path's perspective).
  const sim::TimePoint crash_at =
      4 * sim::kSecond + static_cast<sim::TimePoint>(rng.NextBelow(4 * sim::kSecond));
  const int flaps = 2 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < flaps; ++i) {
    const sim::TimePoint from =
        sim::kSecond + static_cast<sim::TimePoint>(
                           rng.NextBelow(crash_at - 2 * sim::kSecond));
    const sim::Duration length =
        100 * sim::kMillisecond +
        static_cast<sim::Duration>(rng.NextBelow(300 * sim::kMillisecond));
    net::Link* link = &system.scenario().wireless1();
    system.fault_plan().Window(from, from + length,
                               "link-flap wireless1 #" + std::to_string(i),
                               [link] { link->SetUp(false); }, [link] { link->SetUp(true); });
  }
  if (options.crash) {
    system.ScheduleGatewayCrash(crash_at);
  }
  system.ArmFaults();
  system.Start();

  // --- Services: one launcher per destination port ---
  // Proxy services and mobile-side sinks live on FA-region nodes, so the
  // scheduling they do at construction must land in that region.
  sim::ScopedRegion in_fa(&sim, system.scenario().fa_region());
  proxy::ServiceProxy& sp1 = *system.primary_sp();
  for (uint32_t i = 0; i < options.streams; ++i) {
    const uint16_t port = static_cast<uint16_t>(80 + i);
    proxy::StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_home_addr(), port};
    std::string error;
    sp1.AddService("launcher", wildcard, LauncherServices(options.seed + i), &error);
  }

  // --- Workload: sinks on the mobile, senders on the correspondent ---
  std::vector<std::unique_ptr<apps::BulkSink>> sinks;
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (uint32_t i = 0; i < options.streams; ++i) {
    const uint16_t port = static_cast<uint16_t>(80 + i);
    sinks.push_back(std::make_unique<apps::BulkSink>(&system.scenario().mobile(), port));
    // Senders start after the first registration settles; SYN retries cover
    // any remaining registration latency. The correspondent lives in the
    // main region, so the construction event is pinned there explicitly.
    sim.ScheduleInRegion(sim::kMainRegion, sim::kSecond, [&system, &senders, port, &options] {
      senders.push_back(std::make_unique<apps::BulkSender>(
          &system.scenario().correspondent(), system.scenario().mobile_home_addr(), port,
          apps::PatternPayload(options.bytes_per_stream)));
    });
  }

  // Run the full horizon unconditionally: the final metric snapshot is a
  // determinism witness, so every same-seed run must sample it at the same
  // simulated instant.
  sim.RunFor(options.horizon);

  ChaosResult result;
  result.fault_log = system.fault_plan().AppliedLog();
  result.metrics = system.standby_sp().metrics().RenderText("sp.recovery") +
                   system.standby_sp().metrics().RenderText("mip");
  result.crash_at = system.recovery().crash_at;
  result.takeover_at = system.recovery().takeover_at;
  result.pre_crash_streams = system.recovery().pre_crash_streams;
  result.streams_restored = system.recovery().restore.streams_restored;
  result.streams_rebuilt = system.recovery().restore.streams_rebuilt;
  result.all_completed = true;
  for (uint32_t i = 0; i < options.streams; ++i) {
    ChaosStreamOutcome outcome;
    outcome.port = static_cast<uint16_t>(80 + i);
    outcome.bytes = sinks[i]->bytes_received();
    outcome.complete = outcome.bytes == options.bytes_per_stream;
    outcome.last_byte_at = sinks[i]->last_byte_at();
    result.finished_at = std::max(result.finished_at, outcome.last_byte_at);
    result.all_completed = result.all_completed && outcome.complete;
    result.streams.push_back(outcome);
  }
  return result;
}

}  // namespace comma::core

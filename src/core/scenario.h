// Canonical test/bench topology: the network model of thesis Fig. 1.1.
//
//   wired host ──(wired link)── gateway ──(wireless link)── mobile host
//
// The gateway is the natural routing bottleneck where the Service Proxy
// attaches (§5.1.1). Tests, examples, and benches all build on this scenario
// so that experiments share one faithful network model.
#ifndef COMMA_CORE_SCENARIO_H_
#define COMMA_CORE_SCENARIO_H_

#include <memory>

#include "src/core/host.h"
#include "src/net/link.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace comma::core {

struct ScenarioConfig {
  net::LinkConfig wired = net::WiredLinkConfig();
  net::LinkConfig wireless = net::WirelessLinkConfig();
  uint64_t seed = 42;
  // Simulator options (worker count for the epoch loop).
  sim::SimulatorOptions sim;
  // Split the topology into a wired region (wired host) and a wireless
  // region (gateway + mobile), with the wired link as the cross-region
  // edge. Off by default: single-region scenarios stay on the classic
  // serial fast path. The determinism harness runs both and diffs them.
  bool partition_regions = false;
};

// Addresses follow the thesis's interface example (§5.3.2): the mobile host
// is 11.11.10.10 and the wired host lives on a distinct wired subnet.
class WirelessScenario {
 public:
  explicit WirelessScenario(const ScenarioConfig& config = {});
  WirelessScenario(const WirelessScenario&) = delete;
  WirelessScenario& operator=(const WirelessScenario&) = delete;

  sim::Simulator& sim() { return sim_; }
  Host& wired_host() { return *wired_host_; }
  Host& gateway() { return *gateway_; }
  Host& mobile_host() { return *mobile_host_; }
  net::Link& wired_link() { return *wired_link_; }
  net::Link& wireless_link() { return *wireless_link_; }
  sim::Random& rng() { return rng_; }

  net::Ipv4Address wired_addr() const;
  net::Ipv4Address mobile_addr() const;
  net::Ipv4Address gateway_wired_addr() const;
  net::Ipv4Address gateway_wireless_addr() const;

  // kMainRegion for both unless config.partition_regions was set.
  sim::RegionId wired_region() const { return wired_region_; }
  sim::RegionId wireless_region() const { return wireless_region_; }

 private:
  sim::Simulator sim_;
  sim::Random rng_;
  sim::RegionId wired_region_ = sim::kMainRegion;
  sim::RegionId wireless_region_ = sim::kMainRegion;
  std::unique_ptr<Host> wired_host_;
  std::unique_ptr<Host> gateway_;
  std::unique_ptr<Host> mobile_host_;
  std::unique_ptr<net::Link> wired_link_;
  std::unique_ptr<net::Link> wireless_link_;
};

}  // namespace comma::core

#endif  // COMMA_CORE_SCENARIO_H_

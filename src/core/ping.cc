#include "src/core/ping.h"

namespace comma::core {

namespace {

struct EchoFields {
  uint8_t type = 0;
  uint16_t id = 0;
  uint16_t seq = 0;
  uint64_t sent_at = 0;
};

std::optional<EchoFields> ParseEcho(const net::Packet& packet) {
  util::ByteReader r(packet.payload());
  EchoFields f;
  f.type = r.ReadU8();
  r.ReadU8();  // Code, unused.
  f.id = r.ReadU16();
  f.seq = r.ReadU16();
  f.sent_at = r.ReadU64();
  if (r.failed()) {
    return std::nullopt;
  }
  return f;
}

util::Bytes BuildEcho(uint8_t type, uint16_t id, uint16_t seq, uint64_t sent_at) {
  util::Bytes out;
  util::ByteWriter w(&out);
  w.WriteU8(type);
  w.WriteU8(0);
  w.WriteU16(id);
  w.WriteU16(seq);
  w.WriteU64(sent_at);
  // Classic 64-byte ping padding.
  out.resize(56, 0);
  return out;
}

}  // namespace

IcmpResponder::IcmpResponder(net::Node* node) : node_(node) {
  node_->RegisterProtocol(net::IpProtocol::kIcmp, [this](net::PacketPtr p) { Handle(*p); });
}

bool IcmpResponder::Handle(const net::Packet& packet) {
  auto echo = ParseEcho(packet);
  if (!echo.has_value() || echo->type != kIcmpEchoRequest) {
    return false;
  }
  ++requests_answered_;
  node_->SendPacket(net::Packet::MakeRaw(
      packet.ip().dst, packet.ip().src, net::IpProtocol::kIcmp,
      BuildEcho(kIcmpEchoReply, echo->id, echo->seq, echo->sent_at)));
  return true;
}

namespace {
// Deterministic id allocation keeps simulations bit-for-bit reproducible.
uint16_t next_pinger_id = 1;
}  // namespace

Pinger::Pinger(net::Node* node, IcmpResponder* responder, sim::Duration timeout)
    : node_(node), responder_(responder), timeout_(timeout), id_(next_pinger_id++) {
  // Take over the ICMP handler, chaining to the responder for requests.
  node_->RegisterProtocol(net::IpProtocol::kIcmp,
                          [this](net::PacketPtr p) { OnIcmp(std::move(p)); });
}

Pinger::~Pinger() {
  for (auto& [seq, pending] : pending_) {
    node_->simulator()->Cancel(pending.timer);
  }
  // Hand ICMP handling back to the plain responder so in-flight replies
  // never reach a dead object.
  IcmpResponder* responder = responder_;
  if (responder != nullptr) {
    node_->RegisterProtocol(net::IpProtocol::kIcmp,
                            [responder](net::PacketPtr p) { responder->Handle(*p); });
  }
}

void Pinger::Ping(net::Ipv4Address target, Callback cb) {
  const uint16_t seq = next_seq_++;
  ++pings_sent_;
  Pending pending;
  pending.cb = std::move(cb);
  pending.timer = node_->simulator()->ScheduleTimer(timeout_, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) {
      return;
    }
    Callback expired = std::move(it->second.cb);
    pending_.erase(it);
    ++timeouts_;
    if (expired) {
      expired(-1);
    }
  });
  pending_[seq] = std::move(pending);
  node_->SendPacket(net::Packet::MakeRaw(
      node_->PrimaryAddress(), target, net::IpProtocol::kIcmp,
      BuildEcho(kIcmpEchoRequest, id_, seq, static_cast<uint64_t>(node_->simulator()->Now()))));
}

void Pinger::OnIcmp(net::PacketPtr packet) {
  auto echo = ParseEcho(*packet);
  if (!echo.has_value()) {
    return;
  }
  if (echo->type == kIcmpEchoRequest) {
    if (responder_ != nullptr) {
      responder_->Handle(*packet);
    }
    return;
  }
  if (echo->type != kIcmpEchoReply || echo->id != id_) {
    return;
  }
  auto it = pending_.find(echo->seq);
  if (it == pending_.end()) {
    return;  // Late reply after timeout.
  }
  node_->simulator()->Cancel(it->second.timer);
  Callback cb = std::move(it->second.cb);
  pending_.erase(it);
  ++replies_received_;
  last_rtt_ = node_->simulator()->Now() - static_cast<sim::TimePoint>(echo->sent_at);
  if (cb) {
    cb(last_rtt_);
  }
}

}  // namespace comma::core

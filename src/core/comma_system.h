// The assembled Comma system (thesis Fig. 4.1): the wireless scenario with
//  - a Service Proxy on the gateway (the enhanced-proxy architecture's
//    filtering mechanism);
//  - the SP command server on simulated TCP port 12000;
//  - an EEM server on the gateway plus a co-located EEM client wired into
//    the proxy so filters can monitor their execution environment;
//  - factories for Kati shells and a mobile-side proxy (the double-proxy
//    arrangement of §10.2.4).
#ifndef COMMA_CORE_COMMA_SYSTEM_H_
#define COMMA_CORE_COMMA_SYSTEM_H_

#include <memory>

#include "src/core/scenario.h"
#include "src/filters/standard_set.h"
#include "src/kati/shell.h"
#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"
#include "src/proxy/command_server.h"
#include "src/proxy/service_catalog.h"
#include "src/proxy/service_proxy.h"
#include "src/sim/fault_plan.h"

namespace comma::core {

struct CommaSystemConfig {
  ScenarioConfig scenario;
  monitor::EemServerConfig eem;
  // Filters preloaded into the gateway proxy; empty = the full standard set.
  std::vector<std::string> load_filters;
  bool start_command_server = true;
  bool start_eem = true;
  // Enables the runtime invariant auditors (SeqSpaceAuditor,
  // FilterQueueAuditor, StreamRegistryAuditor) for the whole process. The
  // auditors are always compiled in; with this off they cost one atomic
  // load per packet. See docs/correctness.md.
  bool debug_checks = false;
};

class CommaSystem {
 public:
  explicit CommaSystem(const CommaSystemConfig& config = {});

  WirelessScenario& scenario() { return scenario_; }
  sim::Simulator& sim() { return scenario_.sim(); }
  proxy::ServiceProxy& sp() { return *sp_; }
  monitor::EemServer* eem_server() { return eem_server_.get(); }
  proxy::CommandServer* command_server() { return command_server_.get(); }
  const proxy::ServiceCatalog& catalog() const { return catalog_; }

  // --- Fault injection (docs/robustness.md) ---
  // The system-wide fault timeline. Populate it (directly, or via the
  // Schedule* helpers below), then ArmFaults() before Run. The plan's
  // applied log is the determinism witness for a faulted run.
  sim::FaultPlan& fault_plan() { return fault_plan_; }
  void ArmFaults() {
    // Fault actions mutate gateway-side state, so the plan's events belong
    // to the wireless region on a partitioned scenario.
    sim::ScopedRegion in_wireless(&sim(), scenario_.wireless_region());
    fault_plan_.Arm(&sim(), &scenario_.gateway().tracer());
  }

  // Takes a link down at `from` and back up at `until` (in-flight packets
  // on the downed link are lost, exactly like a real carrier loss).
  void ScheduleLinkFlap(net::Link& link, sim::TimePoint from, sim::TimePoint until,
                        const std::string& label);
  // Kills the gateway EEM server at `from` (its registrations die with it)
  // and restarts a fresh, empty instance at `until`; clients are expected
  // to re-populate it through their registration leases.
  void ScheduleEemOutage(sim::TimePoint from, sim::TimePoint until);
  // A gateway "crash": both links and the EEM server go down together.
  void ScheduleGatewayCrash(sim::TimePoint from, sim::TimePoint until);

  // Immediate EEM server kill/restart (the outage window calls these).
  void StopEemServer();
  void RestartEemServer();

  // A Kati shell running on the mobile host, connected to this proxy.
  std::unique_ptr<kati::Shell> MakeKati(kati::Shell::OutputSink sink);

  // Creates (once) a second Service Proxy on the mobile host — the mobile
  // half of a double-proxy deployment. Loads the same filter set.
  proxy::ServiceProxy& MobileProxy();

 private:
  // Registers pull-model TCP/EEM metric sources into the gateway proxy's
  // registry ("tcp.*", "eem.*"; docs/observability.md).
  void RegisterSystemMetrics();
  // Installs an EemMetricsBridge so every proxy metric is an EEM variable.
  void BridgeMetricsIntoEem();

  CommaSystemConfig config_;
  WirelessScenario scenario_;
  proxy::ServiceCatalog catalog_;
  std::unique_ptr<proxy::ServiceProxy> sp_;
  std::unique_ptr<proxy::CommandServer> command_server_;
  std::unique_ptr<monitor::EemServer> eem_server_;
  std::unique_ptr<monitor::EemClient> proxy_eem_client_;
  std::unique_ptr<proxy::ServiceProxy> mobile_sp_;
  sim::FaultPlan fault_plan_;
};

}  // namespace comma::core

#endif  // COMMA_CORE_COMMA_SYSTEM_H_

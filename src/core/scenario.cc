#include "src/core/scenario.h"

namespace comma::core {

namespace {
const net::Ipv4Address kWiredHostAddr(10, 0, 0, 99);
const net::Ipv4Address kGatewayWiredAddr(10, 0, 0, 1);
const net::Ipv4Address kGatewayWirelessAddr(11, 11, 10, 1);
const net::Ipv4Address kMobileHostAddr(11, 11, 10, 10);
}  // namespace

WirelessScenario::WirelessScenario(const ScenarioConfig& config)
    : sim_(config.sim), rng_(config.seed) {
  if (config.partition_regions) {
    // Wired host on one side, gateway + mobile on the other; the wired
    // link's 1 ms propagation delay becomes the PDES lookahead.
    wired_region_ = sim_.AddRegion("wired");
    wireless_region_ = sim_.AddRegion("wireless");
  }
  {
    sim::ScopedRegion in_wired(&sim_, wired_region_);
    wired_host_ = std::make_unique<Host>(&sim_, "wired-host", rng_.Fork());
  }
  {
    sim::ScopedRegion in_wireless(&sim_, wireless_region_);
    gateway_ = std::make_unique<Host>(&sim_, "gateway", rng_.Fork());
    mobile_host_ = std::make_unique<Host>(&sim_, "mobile-host", rng_.Fork());
  }

  wired_link_ = std::make_unique<net::Link>(&sim_, rng_.Fork(), config.wired, "wired");
  wireless_link_ = std::make_unique<net::Link>(&sim_, rng_.Fork(), config.wireless, "wireless");
  wired_link_->SetRegions(wired_region_, wireless_region_);
  wireless_link_->SetRegions(wireless_region_, wireless_region_);

  const uint32_t wh_if = wired_host_->AddInterface(kWiredHostAddr);
  const uint32_t gw_wired_if = gateway_->AddInterface(kGatewayWiredAddr);
  const uint32_t gw_wireless_if = gateway_->AddInterface(kGatewayWirelessAddr);
  const uint32_t mh_if = mobile_host_->AddInterface(kMobileHostAddr);

  wired_host_->AttachLink(wh_if, wired_link_.get(), 0);
  gateway_->AttachLink(gw_wired_if, wired_link_.get(), 1);
  gateway_->AttachLink(gw_wireless_if, wireless_link_.get(), 0);
  mobile_host_->AttachLink(mh_if, wireless_link_.get(), 1);

  wired_host_->SetDefaultRoute(wh_if);
  mobile_host_->SetDefaultRoute(mh_if);
  gateway_->AddRoute(*net::Ipv4Prefix::Parse("10.0.0.0/24"), gw_wired_if);
  gateway_->AddRoute(*net::Ipv4Prefix::Parse("11.11.10.0/24"), gw_wireless_if);
}

net::Ipv4Address WirelessScenario::wired_addr() const { return kWiredHostAddr; }
net::Ipv4Address WirelessScenario::mobile_addr() const { return kMobileHostAddr; }
net::Ipv4Address WirelessScenario::gateway_wired_addr() const { return kGatewayWiredAddr; }
net::Ipv4Address WirelessScenario::gateway_wireless_addr() const { return kGatewayWirelessAddr; }

}  // namespace comma::core

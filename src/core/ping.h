// ICMP echo (ping), used by the EEM's netLatency metric exactly as Table 6.2
// defines it: "measure of the network latency from ping RTTs to the default
// router". Every Host answers echo requests; a Pinger issues them and
// reports round-trip times.
#ifndef COMMA_CORE_PING_H_
#define COMMA_CORE_PING_H_

#include <functional>
#include <map>

#include "src/net/node.h"

namespace comma::core {

// ICMP payload layout: [type, code, u16 id, u16 seq, u64 sent-at].
inline constexpr uint8_t kIcmpEchoRequest = 8;
inline constexpr uint8_t kIcmpEchoReply = 0;

// Answers echo requests arriving at `node`. One per host; installed by the
// Pinger-capable hosts' setup (see Host).
class IcmpResponder {
 public:
  explicit IcmpResponder(net::Node* node);
  uint64_t requests_answered() const { return requests_answered_; }

  // Handles one ICMP packet; returns true if it was an echo request (and
  // was answered). Exposed so a node can chain its own ICMP handling.
  bool Handle(const net::Packet& packet);

 private:
  net::Node* node_;
  uint64_t requests_answered_ = 0;
};

// Issues echo requests and matches replies. Callbacks fire with the RTT, or
// a negative duration on timeout.
class Pinger {
 public:
  using Callback = std::function<void(sim::Duration rtt)>;

  // `responder` is the host's responder, so replies can be demultiplexed
  // from requests arriving at the same protocol handler.
  Pinger(net::Node* node, IcmpResponder* responder,
         sim::Duration timeout = 2 * sim::kSecond);
  // Restores the responder as the node's ICMP handler and cancels every
  // outstanding probe.
  ~Pinger();
  Pinger(const Pinger&) = delete;
  Pinger& operator=(const Pinger&) = delete;

  void Ping(net::Ipv4Address target, Callback cb);

  uint64_t pings_sent() const { return pings_sent_; }
  uint64_t replies_received() const { return replies_received_; }
  uint64_t timeouts() const { return timeouts_; }
  // Most recent successful RTT (0 until the first reply).
  sim::Duration last_rtt() const { return last_rtt_; }

 private:
  struct Pending {
    Callback cb;
    sim::TimerId timer = sim::kInvalidTimerId;
  };

  void OnIcmp(net::PacketPtr packet);

  net::Node* node_;
  IcmpResponder* responder_;
  sim::Duration timeout_;
  uint16_t id_;
  uint16_t next_seq_ = 1;
  std::map<uint16_t, Pending> pending_;  // By sequence number.
  uint64_t pings_sent_ = 0;
  uint64_t replies_received_ = 0;
  uint64_t timeouts_ = 0;
  sim::Duration last_rtt_ = 0;
};

}  // namespace comma::core

#endif  // COMMA_CORE_PING_H_

// Running statistics and simple fixed-bucket histograms for experiment
// reporting (throughput distributions, RTT percentiles, etc.).
#ifndef COMMA_UTIL_STATS_H_
#define COMMA_UTIL_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace comma::util {

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile estimation from a sample set. Two modes:
//  - exact (default): every sample is kept and percentiles are computed
//    exactly — right for bounded experiments;
//  - bounded reservoir: at most `capacity` samples are retained via
//    reservoir sampling (Vitter's algorithm R) with a deterministic
//    xorshift generator, so long-running benches and always-on telemetry
//    (obs::HistogramMetric) cannot grow memory without bound. With fewer
//    than `capacity` samples observed, the reservoir is the full sample set
//    and percentiles are exact.
class Percentiles {
 public:
  Percentiles() = default;  // Exact mode.
  explicit Percentiles(size_t capacity, uint64_t seed = 0x9e3779b97f4a7c15ull)
      : capacity_(capacity), rng_state_(seed | 1) {}

  void Add(double x);
  // p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  // Total samples observed (not bounded by the reservoir).
  size_t count() const { return static_cast<size_t>(seen_); }
  // Samples currently retained (== count() in exact mode).
  size_t stored() const { return samples_.size(); }
  bool bounded() const { return capacity_ > 0; }

 private:
  uint64_t NextRandom();

  mutable std::vector<double> samples_;
  size_t capacity_ = 0;  // 0 = exact mode.
  uint64_t seen_ = 0;
  uint64_t rng_state_ = 0;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);
  void Add(double x);
  uint64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  // Renders an ASCII bar chart, one bucket per line.
  std::string Render(size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace comma::util

#endif  // COMMA_UTIL_STATS_H_

// Running statistics and simple fixed-bucket histograms for experiment
// reporting (throughput distributions, RTT percentiles, etc.).
#ifndef COMMA_UTIL_STATS_H_
#define COMMA_UTIL_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace comma::util {

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores samples; computes exact percentiles on demand.
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); }
  // p in [0, 100]. Returns 0 when empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  size_t count() const { return samples_.size(); }

 private:
  mutable std::vector<double> samples_;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);
  void Add(double x);
  uint64_t BucketCount(size_t i) const { return counts_.at(i); }
  size_t buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  // Renders an ASCII bar chart, one bucket per line.
  std::string Render(size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace comma::util

#endif  // COMMA_UTIL_STATS_H_

// Runtime invariant checks with stream-style messages.
//
//   COMMA_CHECK(st.initialized) << "direction never saw a SYN";
//   COMMA_CHECK_EQ(rec.out_seq + rec.out_len, st.out_frontier);
//
// COMMA_CHECK* are compiled in every build. COMMA_DCHECK* compile to nothing
// under NDEBUG (the condition is not evaluated). A failed check either aborts
// after printing the message to stderr (the default, and what production
// wants) or throws util::CheckFailure carrying the message — tests flip to
// throw mode with ScopedCheckThrow so a fired invariant is observable with
// EXPECT_THROW instead of killing the process.
//
// The file also hosts the global `debug_checks` gate used by the invariant
// auditors (SeqSpaceAuditor, FilterQueueAuditor, StreamRegistryAuditor):
// auditors are always compiled but only walk their data structures when
// DebugChecksEnabled() — release benches pay one relaxed atomic load.
#ifndef COMMA_UTIL_CHECK_H_
#define COMMA_UTIL_CHECK_H_

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace comma::util {

// Thrown by failed checks in throw mode. what() carries the full
// "file:line: COMMA_CHECK failed: ..." message.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& message) : std::runtime_error(message) {}
};

// Process-wide failure behaviour: abort (default) or throw CheckFailure.
void SetCheckThrow(bool throw_on_failure);
bool CheckThrowEnabled();

// RAII toggle for tests.
class ScopedCheckThrow {
 public:
  explicit ScopedCheckThrow(bool enable = true)
      : previous_(CheckThrowEnabled()) {
    SetCheckThrow(enable);
  }
  ~ScopedCheckThrow() { SetCheckThrow(previous_); }
  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;

 private:
  bool previous_;
};

// Process-wide gate for the invariant auditors (CommaSystemConfig's
// debug_checks flag lands here).
void SetDebugChecks(bool enabled);
bool DebugChecksEnabled();

class ScopedDebugChecks {
 public:
  explicit ScopedDebugChecks(bool enable = true)
      : previous_(DebugChecksEnabled()) {
    SetDebugChecks(enable);
  }
  ~ScopedDebugChecks() { SetDebugChecks(previous_); }
  ScopedDebugChecks(const ScopedDebugChecks&) = delete;
  ScopedDebugChecks& operator=(const ScopedDebugChecks&) = delete;

 private:
  bool previous_;
};

namespace internal {

// Collects the streamed message; its destructor reports the failure and
// never returns (abort or throw). Only ever constructed on the failure path.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line);
  [[noreturn]] ~CheckFailStream() noexcept(false);
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Lets the ternary in COMMA_CHECK type-match: void on success, void on
// failure after the full << chain has been applied to the stream.
// (operator& binds looser than operator<<.)
struct Voidify {
  void operator&(std::ostream&) {}
};

// Renders operands of COMMA_CHECK_op failures; char-sized integers print
// numerically so a failed CHECK_EQ on bytes is legible.
template <typename T>
void PrintCheckOperand(std::ostream& os, const T& v) {
  if constexpr (std::is_same_v<T, char> || std::is_same_v<T, signed char> ||
                std::is_same_v<T, unsigned char>) {
    os << static_cast<int>(v);
  } else {
    os << v;
  }
}

template <typename A, typename B>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b, const char* expr) {
  std::ostringstream os;
  os << expr << " (";
  PrintCheckOperand(os, a);
  os << " vs. ";
  PrintCheckOperand(os, b);
  os << ")";
  return std::make_unique<std::string>(os.str());
}

// Returns nullptr when the comparison holds, else the rendered failure text.
// A macro per operator keeps operands evaluated exactly once.
#define COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(name, op)                                \
  template <typename A, typename B>                                                  \
  std::unique_ptr<std::string> name(const A& a, const B& b, const char* expr) {      \
    if (a op b) {                                                                    \
      return nullptr;                                                                \
    }                                                                                \
    return MakeCheckOpString(a, b, expr);                                            \
  }
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpEq, ==)
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpNe, !=)
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpLt, <)
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpLe, <=)
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpGt, >)
COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL(CheckOpGe, >=)
#undef COMMA_INTERNAL_DEFINE_CHECK_OP_IMPL

}  // namespace internal
}  // namespace comma::util

// The `? :` keeps the success path branch-only; the message objects are
// constructed solely when the condition is false.
#define COMMA_CHECK(condition)                                                      \
  (condition) ? (void)0                                                             \
              : ::comma::util::internal::Voidify() &                                \
                    ::comma::util::internal::CheckFailStream(__FILE__, __LINE__)    \
                            .stream()                                               \
                        << "COMMA_CHECK failed: " #condition " "

// The while-loop runs at most once: CheckFailStream's destructor never
// returns. `comma_check_str` holds the rendered "a vs. b" text.
#define COMMA_INTERNAL_CHECK_OP(impl, op, a, b)                                     \
  while (std::unique_ptr<std::string> comma_check_str =                             \
             ::comma::util::internal::impl((a), (b), #a " " #op " " #b))            \
  ::comma::util::internal::CheckFailStream(__FILE__, __LINE__).stream()             \
      << "COMMA_CHECK failed: " << *comma_check_str << " "

#define COMMA_CHECK_EQ(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpEq, ==, a, b)
#define COMMA_CHECK_NE(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpNe, !=, a, b)
#define COMMA_CHECK_LT(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpLt, <, a, b)
#define COMMA_CHECK_LE(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpLe, <=, a, b)
#define COMMA_CHECK_GT(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpGt, >, a, b)
#define COMMA_CHECK_GE(a, b) COMMA_INTERNAL_CHECK_OP(CheckOpGe, >=, a, b)

// Debug-only variants: under NDEBUG the whole statement (condition included)
// sits behind `while (false)` — compiled for correctness, never evaluated,
// and optimized away entirely.
#ifdef NDEBUG
#define COMMA_DCHECK(condition) \
  while (false) COMMA_CHECK(condition)
#define COMMA_DCHECK_EQ(a, b) \
  while (false) COMMA_CHECK_EQ(a, b)
#define COMMA_DCHECK_NE(a, b) \
  while (false) COMMA_CHECK_NE(a, b)
#define COMMA_DCHECK_LT(a, b) \
  while (false) COMMA_CHECK_LT(a, b)
#define COMMA_DCHECK_LE(a, b) \
  while (false) COMMA_CHECK_LE(a, b)
#define COMMA_DCHECK_GT(a, b) \
  while (false) COMMA_CHECK_GT(a, b)
#define COMMA_DCHECK_GE(a, b) \
  while (false) COMMA_CHECK_GE(a, b)
#else
#define COMMA_DCHECK(condition) COMMA_CHECK(condition)
#define COMMA_DCHECK_EQ(a, b) COMMA_CHECK_EQ(a, b)
#define COMMA_DCHECK_NE(a, b) COMMA_CHECK_NE(a, b)
#define COMMA_DCHECK_LT(a, b) COMMA_CHECK_LT(a, b)
#define COMMA_DCHECK_LE(a, b) COMMA_CHECK_LE(a, b)
#define COMMA_DCHECK_GT(a, b) COMMA_CHECK_GT(a, b)
#define COMMA_DCHECK_GE(a, b) COMMA_CHECK_GE(a, b)
#endif

#endif  // COMMA_UTIL_CHECK_H_

// Clang thread-safety annotations behind COMMA_* macros.
//
// The parallel-simulation refactor (ROADMAP item 3) will put real threads
// under code that today runs single-threaded. These macros make the locking
// discipline machine-checked *before* that lands: under Clang they expand to
// the thread-safety-analysis attributes (-Wthread-safety, promoted to an
// error on annotated targets), everywhere else they compile away. comma-lint
// enforces the annotation side statically (rules `mutex-annotation` and
// `lock-order`, docs/static-analysis.md), and the lock hierarchy the
// annotations must respect is declared in DESIGN.md §7.
//
// Usage mirrors the upstream attributes:
//
//   class MetricRegistry {
//     mutable std::mutex metrics_mu_;
//     std::map<...> counters_ COMMA_GUARDED_BY(metrics_mu_);
//     void Lock()   COMMA_ACQUIRE(metrics_mu_);
//     void Unlock() COMMA_RELEASE(metrics_mu_);
//     Counter* GetCounter(const std::string&) COMMA_EXCLUDES(metrics_mu_);
//   };
#ifndef COMMA_UTIL_THREAD_ANNOTATIONS_H_
#define COMMA_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define COMMA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef COMMA_THREAD_ANNOTATION_
#define COMMA_THREAD_ANNOTATION_(x)  // GCC/MSVC: annotations are documentation.
#endif

// A data member that may only be read or written while `x` is held.
#define COMMA_GUARDED_BY(x) COMMA_THREAD_ANNOTATION_(guarded_by(x))

// A pointer member whose *pointee* is protected by `x` (the pointer itself
// may be read freely).
#define COMMA_PT_GUARDED_BY(x) COMMA_THREAD_ANNOTATION_(pt_guarded_by(x))

// The caller must hold `x` (exclusively / shared) when calling the function.
#define COMMA_REQUIRES(...) COMMA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define COMMA_REQUIRES_SHARED(...) \
  COMMA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires `x` and holds it on return / releases `x` it held.
#define COMMA_ACQUIRE(...) COMMA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define COMMA_RELEASE(...) COMMA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// The caller must NOT hold `x` (the function acquires it internally; calling
// with it held would self-deadlock on a non-recursive mutex).
#define COMMA_EXCLUDES(...) COMMA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Declares a type as a capability (for wrapper mutex types) and marks RAII
// lock guards so the analysis tracks their scope.
#define COMMA_CAPABILITY(x) COMMA_THREAD_ANNOTATION_(capability(x))
#define COMMA_SCOPED_CAPABILITY COMMA_THREAD_ANNOTATION_(scoped_lockable)

// Escape hatch for code the analysis cannot follow (e.g. locking through an
// alias the analyzer cannot resolve). Use sparingly, with a comment.
#define COMMA_NO_THREAD_SAFETY_ANALYSIS COMMA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // COMMA_UTIL_THREAD_ANNOTATIONS_H_

#include "src/util/bytes.h"

#include <algorithm>

namespace comma::util {

void ByteWriter::WriteString(const std::string& s) {
  const size_t len = std::min<size_t>(s.size(), UINT16_MAX);
  WriteU16(static_cast<uint16_t>(len));
  WriteBytes(AsBytePtr(s.data()), len);
}

bool ByteReader::Need(size_t n) {
  if (failed_ || len_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

uint8_t ByteReader::ReadU8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t ByteReader::ReadU16() {
  if (!Need(2)) {
    return 0;
  }
  uint16_t v = static_cast<uint16_t>(static_cast<uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

uint32_t ByteReader::ReadU32() {
  uint32_t hi = ReadU16();
  uint32_t lo = ReadU16();
  return hi << 16 | lo;
}

uint64_t ByteReader::ReadU64() {
  uint64_t hi = ReadU32();
  uint64_t lo = ReadU32();
  return hi << 32 | lo;
}

Bytes ByteReader::ReadBytes(size_t len) {
  if (!Need(len)) {
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string ByteReader::ReadString() {
  uint16_t len = ReadU16();
  if (!Need(len)) {
    return {};
  }
  std::string out(AsCharPtr(data_ + pos_), len);
  pos_ += len;
  return out;
}

std::string HexDump(const Bytes& data, size_t max) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  const size_t n = std::min(data.size(), max);
  out.reserve(n * 3);
  for (size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (data.size() > max) {
    out += " ...";
  }
  return out;
}

}  // namespace comma::util

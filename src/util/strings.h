// Small string helpers shared across modules.
#ifndef COMMA_UTIL_STRINGS_H_
#define COMMA_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace comma::util {

// Splits on any run of whitespace; no empty tokens are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

// Trims ASCII whitespace from both ends.
std::string Trim(std::string_view text);

// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Case-sensitive prefix test.
bool StartsWith(std::string_view text, std::string_view prefix);

// Parses a non-negative integer; returns false on any malformed input.
bool ParseU32(std::string_view text, uint32_t* out);
bool ParseU64(std::string_view text, uint64_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace comma::util

#endif  // COMMA_UTIL_STRINGS_H_

// Self-contained lossless compressors for the transparent compression
// service (thesis §8.1.6) and the data-type translation filters (§8.3.3).
//
// Two codecs are provided:
//  - RLE: trivial run-length coding; fast, effective on synthetic media.
//  - LZ: a greedy LZ77 with a 4 KiB window, byte-oriented token stream.
//
// Both produce a 4-byte header (magic + codec id + original length) so a
// decompressor can validate input and size its output buffer. Compress()
// falls back to a stored block when compression would expand the input, so
// compressed size never exceeds original size + 5.
#ifndef COMMA_UTIL_COMPRESS_H_
#define COMMA_UTIL_COMPRESS_H_

#include <cstdint>
#include <optional>

#include "src/util/bytes.h"

namespace comma::util {

enum class Codec : uint8_t {
  kStored = 0,  // No compression; used as a fallback.
  kRle = 1,
  kLz = 2,
};

// Compresses `input` with the requested codec (falling back to kStored when
// that is smaller). Never fails.
Bytes Compress(const Bytes& input, Codec codec);

// Decompresses a buffer produced by Compress(). Returns nullopt on corrupt
// or truncated input.
std::optional<Bytes> Decompress(const Bytes& input);

// Peeks at a compressed buffer's codec without decompressing.
std::optional<Codec> PeekCodec(const Bytes& input);

}  // namespace comma::util

#endif  // COMMA_UTIL_COMPRESS_H_

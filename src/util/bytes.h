// Byte-buffer reader/writer with network (big-endian) byte order.
//
// Used by the packet serializers and the EEM wire protocol. Reads are
// checked: running past the end puts the reader into a sticky failed state
// instead of invoking undefined behaviour.
#ifndef COMMA_UTIL_BYTES_H_
#define COMMA_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace comma::util {

using Bytes = std::vector<uint8_t>;

// --- Text <-> wire-byte bridging ---
// The only sanctioned reinterpret_casts in the tree: every other site goes
// through these so clang-tidy can flag strays.
inline const uint8_t* AsBytePtr(const char* p) {
  return reinterpret_cast<const uint8_t*>(p);  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
}
inline const char* AsCharPtr(const uint8_t* p) {
  return reinterpret_cast<const char*>(p);  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
}
inline Bytes ToBytes(std::string_view s) {
  if (s.empty()) {
    return {};
  }
  return {AsBytePtr(s.data()), AsBytePtr(s.data()) + s.size()};
}
inline std::string ToString(const Bytes& b) {
  if (b.empty()) {
    return {};
  }
  return {AsCharPtr(b.data()), b.size()};
}
// Appends the payload bytes of `b` to a text accumulator (stream reassembly).
inline void AppendTo(std::string* out, const Bytes& b) {
  if (!b.empty()) {
    out->append(AsCharPtr(b.data()), b.size());
  }
}

class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void WriteU8(uint8_t v) { out_->push_back(v); }
  void WriteU16(uint16_t v) {
    out_->push_back(static_cast<uint8_t>(v >> 8));
    out_->push_back(static_cast<uint8_t>(v));
  }
  void WriteU32(uint32_t v) {
    WriteU16(static_cast<uint16_t>(v >> 16));
    WriteU16(static_cast<uint16_t>(v));
  }
  void WriteU64(uint64_t v) {
    WriteU32(static_cast<uint32_t>(v >> 32));
    WriteU32(static_cast<uint32_t>(v));
  }
  void WriteBytes(const uint8_t* data, size_t len) { out_->insert(out_->end(), data, data + len); }
  void WriteBytes(const Bytes& data) { WriteBytes(data.data(), data.size()); }
  // Length-prefixed (u16) string; strings longer than 64 KiB are truncated.
  void WriteString(const std::string& s);

  size_t size() const { return out_->size(); }

 private:
  Bytes* out_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& data) : ByteReader(data.data(), data.size()) {}

  uint8_t ReadU8();
  uint16_t ReadU16();
  uint32_t ReadU32();
  uint64_t ReadU64();
  Bytes ReadBytes(size_t len);
  std::string ReadString();

  // True once any read has run past the end of the buffer.
  bool failed() const { return failed_; }
  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }

 private:
  bool Need(size_t n);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// Renders up to `max` bytes as hex for diagnostics.
std::string HexDump(const Bytes& data, size_t max = 64);

}  // namespace comma::util

#endif  // COMMA_UTIL_BYTES_H_

#include "src/util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace comma::util {

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ParseU32(std::string_view text, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseU64(text, &v) || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace comma::util

#include "src/util/stats.h"

#include <cmath>

#include "src/util/strings.h"

namespace comma::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

uint64_t Percentiles::NextRandom() {
  // xorshift64*: deterministic, seedable, good enough for reservoir picks.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

void Percentiles::Add(double x) {
  ++seen_;
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // Algorithm R: the new sample replaces a random slot with probability
  // capacity/seen, keeping every observed sample equally likely to survive.
  const uint64_t slot = NextRandom() % seen_;
  if (slot < capacity_) {
    samples_[static_cast<size_t>(slot)] = x;
  }
}

double Percentiles::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::sort(samples_.begin(), samples_.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets ? buckets : 1, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (hi_ <= lo_) {
    ++counts_[0];
    return;
  }
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
}

std::string Histogram::Render(size_t width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  const double bucket_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double lo = lo_ + bucket_width * static_cast<double>(i);
    size_t bar = peak ? static_cast<size_t>(static_cast<double>(counts_[i]) / peak * width) : 0;
    out += Format("%10.3f | %-*s %llu\n", lo, static_cast<int>(width),
                  std::string(bar, '#').c_str(), static_cast<unsigned long long>(counts_[i]));
  }
  return out;
}

}  // namespace comma::util

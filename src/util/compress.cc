#include "src/util/compress.h"

#include <algorithm>
#include <array>

namespace comma::util {
namespace {

constexpr uint8_t kMagic = 0xC3;  // 'C' for Comma, high bit set.
constexpr size_t kHeaderSize = 8;  // magic, codec, u32 original length, u16 checksum.
constexpr size_t kLzWindow = 4096;
constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxMatch = 255;

// Fletcher-16 over the *original* data: detects payload corruption that the
// token structure alone would let through.
uint16_t Fletcher16(const Bytes& data) {
  uint32_t a = 0;
  uint32_t b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % 255;
    b = (b + a) % 255;
  }
  return static_cast<uint16_t>(b << 8 | a);
}

void WriteHeader(Bytes* out, Codec codec, uint32_t original_len, uint16_t checksum) {
  ByteWriter w(out);
  w.WriteU8(kMagic);
  w.WriteU8(static_cast<uint8_t>(codec));
  w.WriteU32(original_len);
  w.WriteU16(checksum);
}

Bytes RleCompress(const Bytes& input) {
  // Token stream: (count, byte) pairs, count in [1, 255].
  Bytes out;
  size_t i = 0;
  while (i < input.size()) {
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] && run < 255) {
      ++run;
    }
    out.push_back(static_cast<uint8_t>(run));
    out.push_back(input[i]);
    i += run;
  }
  return out;
}

std::optional<Bytes> RleDecompress(ByteReader& r, uint32_t original_len) {
  Bytes out;
  out.reserve(original_len);
  while (out.size() < original_len) {
    uint8_t count = r.ReadU8();
    uint8_t value = r.ReadU8();
    if (r.failed() || count == 0) {
      return std::nullopt;
    }
    out.insert(out.end(), count, value);
  }
  if (out.size() != original_len) {
    return std::nullopt;
  }
  return out;
}

// LZ token stream: a control byte selects literal vs match.
//   0x00 len            : literal run of `len` bytes follows (len in [1,255])
//   0x01 len off_hi off_lo : match of `len` bytes at distance `off`
Bytes LzCompress(const Bytes& input) {
  Bytes out;
  // Hash chain over 4-byte prefixes.
  constexpr size_t kHashSize = 1 << 13;
  std::array<int64_t, kHashSize> head;
  head.fill(-1);
  std::vector<int64_t> prev(input.size(), -1);

  auto hash4 = [&](size_t pos) {
    uint32_t v = 0;
    for (size_t k = 0; k < 4; ++k) {
      v = v * 131 + input[pos + k];
    }
    return v & (kHashSize - 1);
  };

  Bytes literals;
  auto flush_literals = [&]() {
    size_t i = 0;
    while (i < literals.size()) {
      size_t n = std::min<size_t>(literals.size() - i, 255);
      out.push_back(0x00);
      out.push_back(static_cast<uint8_t>(n));
      out.insert(out.end(), literals.begin() + static_cast<long>(i),
                 literals.begin() + static_cast<long>(i + n));
      i += n;
    }
    literals.clear();
  };

  size_t pos = 0;
  while (pos < input.size()) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (pos + kLzMinMatch <= input.size()) {
      const uint32_t h = hash4(pos);
      int64_t cand = head[h];
      int tries = 16;
      while (cand >= 0 && tries-- > 0 && pos - static_cast<size_t>(cand) <= kLzWindow) {
        const size_t c = static_cast<size_t>(cand);
        size_t len = 0;
        const size_t limit = std::min(input.size() - pos, kLzMaxMatch);
        while (len < limit && input[c + len] == input[pos + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
        }
        cand = prev[c];
      }
      prev[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
    }
    if (best_len >= kLzMinMatch) {
      flush_literals();
      out.push_back(0x01);
      out.push_back(static_cast<uint8_t>(best_len));
      out.push_back(static_cast<uint8_t>(best_off >> 8));
      out.push_back(static_cast<uint8_t>(best_off));
      // Insert hash entries for skipped positions so later matches can refer
      // into this region.
      for (size_t k = 1; k < best_len && pos + k + kLzMinMatch <= input.size(); ++k) {
        const uint32_t h = hash4(pos + k);
        prev[pos + k] = head[h];
        head[h] = static_cast<int64_t>(pos + k);
      }
      pos += best_len;
    } else {
      literals.push_back(input[pos]);
      ++pos;
    }
  }
  flush_literals();
  return out;
}

std::optional<Bytes> LzDecompress(ByteReader& r, uint32_t original_len) {
  Bytes out;
  out.reserve(original_len);
  while (out.size() < original_len) {
    uint8_t tag = r.ReadU8();
    if (r.failed()) {
      return std::nullopt;
    }
    if (tag == 0x00) {
      uint8_t len = r.ReadU8();
      Bytes lit = r.ReadBytes(len);
      if (r.failed() || len == 0) {
        return std::nullopt;
      }
      out.insert(out.end(), lit.begin(), lit.end());
    } else if (tag == 0x01) {
      uint8_t len = r.ReadU8();
      uint16_t off = r.ReadU16();
      if (r.failed() || len == 0 || off == 0 || off > out.size()) {
        return std::nullopt;
      }
      // Overlapping copies are legal (RLE-style matches); copy byte-wise.
      size_t src = out.size() - off;
      for (size_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      return std::nullopt;
    }
  }
  if (out.size() != original_len) {
    return std::nullopt;
  }
  return out;
}

}  // namespace

Bytes Compress(const Bytes& input, Codec codec) {
  Bytes body;
  switch (codec) {
    case Codec::kRle:
      body = RleCompress(input);
      break;
    case Codec::kLz:
      body = LzCompress(input);
      break;
    case Codec::kStored:
      body = input;
      break;
  }
  if (codec != Codec::kStored && body.size() >= input.size()) {
    codec = Codec::kStored;
    body = input;
  }
  Bytes out;
  out.reserve(kHeaderSize + body.size());
  WriteHeader(&out, codec, static_cast<uint32_t>(input.size()), Fletcher16(input));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Bytes> Decompress(const Bytes& input) {
  ByteReader r(input);
  if (r.ReadU8() != kMagic) {
    return std::nullopt;
  }
  const uint8_t codec = r.ReadU8();
  const uint32_t original_len = r.ReadU32();
  const uint16_t checksum = r.ReadU16();
  if (r.failed()) {
    return std::nullopt;
  }
  std::optional<Bytes> out;
  switch (static_cast<Codec>(codec)) {
    case Codec::kStored: {
      Bytes body = r.ReadBytes(original_len);
      if (r.failed()) {
        return std::nullopt;
      }
      out = std::move(body);
      break;
    }
    case Codec::kRle:
      out = RleDecompress(r, original_len);
      break;
    case Codec::kLz:
      out = LzDecompress(r, original_len);
      break;
    default:
      return std::nullopt;
  }
  if (!out.has_value() || Fletcher16(*out) != checksum) {
    return std::nullopt;
  }
  return out;
}

std::optional<Codec> PeekCodec(const Bytes& input) {
  if (input.size() < kHeaderSize || input[0] != kMagic || input[1] > 2) {
    return std::nullopt;
  }
  return static_cast<Codec>(input[1]);
}

}  // namespace comma::util

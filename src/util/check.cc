#include "src/util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace comma::util {

namespace {
std::atomic<bool> g_check_throw{false};
std::atomic<bool> g_debug_checks{false};
}  // namespace

void SetCheckThrow(bool throw_on_failure) {
  g_check_throw.store(throw_on_failure, std::memory_order_relaxed);
}

bool CheckThrowEnabled() { return g_check_throw.load(std::memory_order_relaxed); }

void SetDebugChecks(bool enabled) { g_debug_checks.store(enabled, std::memory_order_relaxed); }

bool DebugChecksEnabled() { return g_debug_checks.load(std::memory_order_relaxed); }

namespace internal {

CheckFailStream::CheckFailStream(const char* file, int line) {
  stream_ << file << ":" << line << ": ";
}

CheckFailStream::~CheckFailStream() noexcept(false) {
  const std::string message = stream_.str();
  if (CheckThrowEnabled()) {
    throw CheckFailure(message);
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace comma::util

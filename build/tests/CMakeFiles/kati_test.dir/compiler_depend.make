# Empty compiler generated dependencies file for kati_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kati_test.dir/kati/kati_test.cc.o"
  "CMakeFiles/kati_test.dir/kati/kati_test.cc.o.d"
  "kati_test"
  "kati_test.pdb"
  "kati_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kati_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tcp_test.dir/tcp/close_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/close_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/congestion_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/congestion_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/edge_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/edge_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/flow_control_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/flow_control_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/handshake_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/handshake_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/property_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/property_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/seq_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/seq_test.cc.o.d"
  "CMakeFiles/tcp_test.dir/tcp/transfer_test.cc.o"
  "CMakeFiles/tcp_test.dir/tcp/transfer_test.cc.o.d"
  "tcp_test"
  "tcp_test.pdb"
  "tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/address_test.cc" "tests/CMakeFiles/net_test.dir/net/address_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/address_test.cc.o.d"
  "/root/repo/tests/net/checksum_test.cc" "tests/CMakeFiles/net_test.dir/net/checksum_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/checksum_test.cc.o.d"
  "/root/repo/tests/net/failure_test.cc" "tests/CMakeFiles/net_test.dir/net/failure_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/failure_test.cc.o.d"
  "/root/repo/tests/net/link_test.cc" "tests/CMakeFiles/net_test.dir/net/link_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/link_test.cc.o.d"
  "/root/repo/tests/net/node_test.cc" "tests/CMakeFiles/net_test.dir/net/node_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/node_test.cc.o.d"
  "/root/repo/tests/net/packet_test.cc" "tests/CMakeFiles/net_test.dir/net/packet_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/packet_test.cc.o.d"
  "/root/repo/tests/net/trace_tap_test.cc" "tests/CMakeFiles/net_test.dir/net/trace_tap_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/trace_tap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/comma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/comma_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/comma_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/comma_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/comma_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/comma_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/comma_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mobileip_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mobileip_test.dir/mobileip/mobileip_test.cc.o"
  "CMakeFiles/mobileip_test.dir/mobileip/mobileip_test.cc.o.d"
  "CMakeFiles/mobileip_test.dir/mobileip/proxy_handoff_test.cc.o"
  "CMakeFiles/mobileip_test.dir/mobileip/proxy_handoff_test.cc.o.d"
  "mobileip_test"
  "mobileip_test.pdb"
  "mobileip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobileip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

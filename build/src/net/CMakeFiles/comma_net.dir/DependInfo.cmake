
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/net/CMakeFiles/comma_net.dir/address.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/address.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/comma_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/comma_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/link.cc.o.d"
  "/root/repo/src/net/node.cc" "src/net/CMakeFiles/comma_net.dir/node.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/node.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/comma_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/packet.cc.o.d"
  "/root/repo/src/net/trace_tap.cc" "src/net/CMakeFiles/comma_net.dir/trace_tap.cc.o" "gcc" "src/net/CMakeFiles/comma_net.dir/trace_tap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

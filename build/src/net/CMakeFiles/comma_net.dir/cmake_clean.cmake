file(REMOVE_RECURSE
  "CMakeFiles/comma_net.dir/address.cc.o"
  "CMakeFiles/comma_net.dir/address.cc.o.d"
  "CMakeFiles/comma_net.dir/checksum.cc.o"
  "CMakeFiles/comma_net.dir/checksum.cc.o.d"
  "CMakeFiles/comma_net.dir/link.cc.o"
  "CMakeFiles/comma_net.dir/link.cc.o.d"
  "CMakeFiles/comma_net.dir/node.cc.o"
  "CMakeFiles/comma_net.dir/node.cc.o.d"
  "CMakeFiles/comma_net.dir/packet.cc.o"
  "CMakeFiles/comma_net.dir/packet.cc.o.d"
  "CMakeFiles/comma_net.dir/trace_tap.cc.o"
  "CMakeFiles/comma_net.dir/trace_tap.cc.o.d"
  "libcomma_net.a"
  "libcomma_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcomma_net.a"
)

# Empty dependencies file for comma_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_util.dir/bytes.cc.o"
  "CMakeFiles/comma_util.dir/bytes.cc.o.d"
  "CMakeFiles/comma_util.dir/compress.cc.o"
  "CMakeFiles/comma_util.dir/compress.cc.o.d"
  "CMakeFiles/comma_util.dir/stats.cc.o"
  "CMakeFiles/comma_util.dir/stats.cc.o.d"
  "CMakeFiles/comma_util.dir/strings.cc.o"
  "CMakeFiles/comma_util.dir/strings.cc.o.d"
  "libcomma_util.a"
  "libcomma_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcomma_util.a"
)

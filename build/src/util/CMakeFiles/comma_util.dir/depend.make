# Empty dependencies file for comma_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_mobileip.dir/foreign_agent.cc.o"
  "CMakeFiles/comma_mobileip.dir/foreign_agent.cc.o.d"
  "CMakeFiles/comma_mobileip.dir/home_agent.cc.o"
  "CMakeFiles/comma_mobileip.dir/home_agent.cc.o.d"
  "CMakeFiles/comma_mobileip.dir/messages.cc.o"
  "CMakeFiles/comma_mobileip.dir/messages.cc.o.d"
  "CMakeFiles/comma_mobileip.dir/mobile_client.cc.o"
  "CMakeFiles/comma_mobileip.dir/mobile_client.cc.o.d"
  "CMakeFiles/comma_mobileip.dir/proxy_handoff.cc.o"
  "CMakeFiles/comma_mobileip.dir/proxy_handoff.cc.o.d"
  "CMakeFiles/comma_mobileip.dir/scenario.cc.o"
  "CMakeFiles/comma_mobileip.dir/scenario.cc.o.d"
  "libcomma_mobileip.a"
  "libcomma_mobileip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_mobileip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

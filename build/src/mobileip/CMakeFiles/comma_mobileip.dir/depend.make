# Empty dependencies file for comma_mobileip.
# This may be replaced when dependencies are built.

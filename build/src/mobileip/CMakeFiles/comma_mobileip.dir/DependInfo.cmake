
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobileip/foreign_agent.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/foreign_agent.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/foreign_agent.cc.o.d"
  "/root/repo/src/mobileip/home_agent.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/home_agent.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/home_agent.cc.o.d"
  "/root/repo/src/mobileip/messages.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/messages.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/messages.cc.o.d"
  "/root/repo/src/mobileip/mobile_client.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/mobile_client.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/mobile_client.cc.o.d"
  "/root/repo/src/mobileip/proxy_handoff.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/proxy_handoff.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/proxy_handoff.cc.o.d"
  "/root/repo/src/mobileip/scenario.cc" "src/mobileip/CMakeFiles/comma_mobileip.dir/scenario.cc.o" "gcc" "src/mobileip/CMakeFiles/comma_mobileip.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/comma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/comma_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/comma_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/comma_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

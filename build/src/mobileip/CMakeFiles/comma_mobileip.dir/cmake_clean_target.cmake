file(REMOVE_RECURSE
  "libcomma_mobileip.a"
)

# Empty compiler generated dependencies file for comma_udp.
# This may be replaced when dependencies are built.

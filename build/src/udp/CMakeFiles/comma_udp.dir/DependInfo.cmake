
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/udp/udp_stack.cc" "src/udp/CMakeFiles/comma_udp.dir/udp_stack.cc.o" "gcc" "src/udp/CMakeFiles/comma_udp.dir/udp_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

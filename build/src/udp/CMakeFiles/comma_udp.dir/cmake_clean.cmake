file(REMOVE_RECURSE
  "CMakeFiles/comma_udp.dir/udp_stack.cc.o"
  "CMakeFiles/comma_udp.dir/udp_stack.cc.o.d"
  "libcomma_udp.a"
  "libcomma_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

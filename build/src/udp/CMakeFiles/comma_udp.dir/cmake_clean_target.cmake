file(REMOVE_RECURSE
  "libcomma_udp.a"
)

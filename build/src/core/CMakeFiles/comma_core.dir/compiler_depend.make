# Empty compiler generated dependencies file for comma_core.
# This may be replaced when dependencies are built.

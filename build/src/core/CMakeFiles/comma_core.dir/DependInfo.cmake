
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ping.cc" "src/core/CMakeFiles/comma_core.dir/ping.cc.o" "gcc" "src/core/CMakeFiles/comma_core.dir/ping.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/comma_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/comma_core.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/comma_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/comma_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/comma_core.dir/ping.cc.o"
  "CMakeFiles/comma_core.dir/ping.cc.o.d"
  "CMakeFiles/comma_core.dir/scenario.cc.o"
  "CMakeFiles/comma_core.dir/scenario.cc.o.d"
  "libcomma_core.a"
  "libcomma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

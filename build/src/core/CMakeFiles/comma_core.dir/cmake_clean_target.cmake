file(REMOVE_RECURSE
  "libcomma_core.a"
)

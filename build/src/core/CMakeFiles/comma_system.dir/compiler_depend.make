# Empty compiler generated dependencies file for comma_system.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_system.dir/comma_system.cc.o"
  "CMakeFiles/comma_system.dir/comma_system.cc.o.d"
  "libcomma_system.a"
  "libcomma_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

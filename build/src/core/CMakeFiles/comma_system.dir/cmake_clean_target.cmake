file(REMOVE_RECURSE
  "libcomma_system.a"
)

# Empty compiler generated dependencies file for comma_kati.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcomma_kati.a"
)

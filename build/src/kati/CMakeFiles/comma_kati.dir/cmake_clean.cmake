file(REMOVE_RECURSE
  "CMakeFiles/comma_kati.dir/shell.cc.o"
  "CMakeFiles/comma_kati.dir/shell.cc.o.d"
  "CMakeFiles/comma_kati.dir/sp_client.cc.o"
  "CMakeFiles/comma_kati.dir/sp_client.cc.o.d"
  "libcomma_kati.a"
  "libcomma_kati.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_kati.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

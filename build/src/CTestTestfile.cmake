# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("util")
subdirs("net")
subdirs("tcp")
subdirs("udp")
subdirs("mobileip")
subdirs("monitor")
subdirs("proxy")
subdirs("filters")
subdirs("kati")
subdirs("baselines")
subdirs("apps")
subdirs("core")

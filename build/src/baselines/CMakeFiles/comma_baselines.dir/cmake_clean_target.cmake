file(REMOVE_RECURSE
  "libcomma_baselines.a"
)

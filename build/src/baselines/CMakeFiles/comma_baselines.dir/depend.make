# Empty dependencies file for comma_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_baselines.dir/itcp.cc.o"
  "CMakeFiles/comma_baselines.dir/itcp.cc.o.d"
  "CMakeFiles/comma_baselines.dir/link_arq.cc.o"
  "CMakeFiles/comma_baselines.dir/link_arq.cc.o.d"
  "libcomma_baselines.a"
  "libcomma_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

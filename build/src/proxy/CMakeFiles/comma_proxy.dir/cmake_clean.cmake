file(REMOVE_RECURSE
  "CMakeFiles/comma_proxy.dir/command.cc.o"
  "CMakeFiles/comma_proxy.dir/command.cc.o.d"
  "CMakeFiles/comma_proxy.dir/command_server.cc.o"
  "CMakeFiles/comma_proxy.dir/command_server.cc.o.d"
  "CMakeFiles/comma_proxy.dir/filter_registry.cc.o"
  "CMakeFiles/comma_proxy.dir/filter_registry.cc.o.d"
  "CMakeFiles/comma_proxy.dir/service_catalog.cc.o"
  "CMakeFiles/comma_proxy.dir/service_catalog.cc.o.d"
  "CMakeFiles/comma_proxy.dir/service_proxy.cc.o"
  "CMakeFiles/comma_proxy.dir/service_proxy.cc.o.d"
  "CMakeFiles/comma_proxy.dir/stream_key.cc.o"
  "CMakeFiles/comma_proxy.dir/stream_key.cc.o.d"
  "libcomma_proxy.a"
  "libcomma_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

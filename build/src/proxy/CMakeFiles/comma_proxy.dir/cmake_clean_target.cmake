file(REMOVE_RECURSE
  "libcomma_proxy.a"
)

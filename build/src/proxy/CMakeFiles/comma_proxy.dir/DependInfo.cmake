
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/command.cc" "src/proxy/CMakeFiles/comma_proxy.dir/command.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/command.cc.o.d"
  "/root/repo/src/proxy/command_server.cc" "src/proxy/CMakeFiles/comma_proxy.dir/command_server.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/command_server.cc.o.d"
  "/root/repo/src/proxy/filter_registry.cc" "src/proxy/CMakeFiles/comma_proxy.dir/filter_registry.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/filter_registry.cc.o.d"
  "/root/repo/src/proxy/service_catalog.cc" "src/proxy/CMakeFiles/comma_proxy.dir/service_catalog.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/service_catalog.cc.o.d"
  "/root/repo/src/proxy/service_proxy.cc" "src/proxy/CMakeFiles/comma_proxy.dir/service_proxy.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/service_proxy.cc.o.d"
  "/root/repo/src/proxy/stream_key.cc" "src/proxy/CMakeFiles/comma_proxy.dir/stream_key.cc.o" "gcc" "src/proxy/CMakeFiles/comma_proxy.dir/stream_key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/comma_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for comma_proxy.
# This may be replaced when dependencies are built.

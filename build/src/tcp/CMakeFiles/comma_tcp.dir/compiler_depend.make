# Empty compiler generated dependencies file for comma_tcp.
# This may be replaced when dependencies are built.

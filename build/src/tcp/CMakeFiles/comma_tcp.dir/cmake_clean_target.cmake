file(REMOVE_RECURSE
  "libcomma_tcp.a"
)

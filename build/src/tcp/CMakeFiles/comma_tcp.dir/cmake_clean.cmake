file(REMOVE_RECURSE
  "CMakeFiles/comma_tcp.dir/tcp_connection.cc.o"
  "CMakeFiles/comma_tcp.dir/tcp_connection.cc.o.d"
  "CMakeFiles/comma_tcp.dir/tcp_stack.cc.o"
  "CMakeFiles/comma_tcp.dir/tcp_stack.cc.o.d"
  "libcomma_tcp.a"
  "libcomma_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcomma_monitor.a"
)

# Empty compiler generated dependencies file for comma_monitor.
# This may be replaced when dependencies are built.

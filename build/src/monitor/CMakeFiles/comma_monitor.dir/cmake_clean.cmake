file(REMOVE_RECURSE
  "CMakeFiles/comma_monitor.dir/eem_client.cc.o"
  "CMakeFiles/comma_monitor.dir/eem_client.cc.o.d"
  "CMakeFiles/comma_monitor.dir/eem_server.cc.o"
  "CMakeFiles/comma_monitor.dir/eem_server.cc.o.d"
  "CMakeFiles/comma_monitor.dir/protocol.cc.o"
  "CMakeFiles/comma_monitor.dir/protocol.cc.o.d"
  "CMakeFiles/comma_monitor.dir/value.cc.o"
  "CMakeFiles/comma_monitor.dir/value.cc.o.d"
  "CMakeFiles/comma_monitor.dir/variables.cc.o"
  "CMakeFiles/comma_monitor.dir/variables.cc.o.d"
  "libcomma_monitor.a"
  "libcomma_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

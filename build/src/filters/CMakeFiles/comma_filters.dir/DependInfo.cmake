
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/launcher_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/launcher_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/launcher_filter.cc.o.d"
  "/root/repo/src/filters/media_filters.cc" "src/filters/CMakeFiles/comma_filters.dir/media_filters.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/media_filters.cc.o.d"
  "/root/repo/src/filters/qcache_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/qcache_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/qcache_filter.cc.o.d"
  "/root/repo/src/filters/query_protocol.cc" "src/filters/CMakeFiles/comma_filters.dir/query_protocol.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/query_protocol.cc.o.d"
  "/root/repo/src/filters/rdrop_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/rdrop_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/rdrop_filter.cc.o.d"
  "/root/repo/src/filters/snoop_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/snoop_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/snoop_filter.cc.o.d"
  "/root/repo/src/filters/standard_set.cc" "src/filters/CMakeFiles/comma_filters.dir/standard_set.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/standard_set.cc.o.d"
  "/root/repo/src/filters/tcp_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/tcp_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/tcp_filter.cc.o.d"
  "/root/repo/src/filters/transform_filters.cc" "src/filters/CMakeFiles/comma_filters.dir/transform_filters.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/transform_filters.cc.o.d"
  "/root/repo/src/filters/ttsf_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/ttsf_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/ttsf_filter.cc.o.d"
  "/root/repo/src/filters/wsize_filter.cc" "src/filters/CMakeFiles/comma_filters.dir/wsize_filter.cc.o" "gcc" "src/filters/CMakeFiles/comma_filters.dir/wsize_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proxy/CMakeFiles/comma_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/comma_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/comma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/comma_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/udp/CMakeFiles/comma_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/comma_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/comma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/comma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

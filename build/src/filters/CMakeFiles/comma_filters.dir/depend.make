# Empty dependencies file for comma_filters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_filters.dir/launcher_filter.cc.o"
  "CMakeFiles/comma_filters.dir/launcher_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/media_filters.cc.o"
  "CMakeFiles/comma_filters.dir/media_filters.cc.o.d"
  "CMakeFiles/comma_filters.dir/qcache_filter.cc.o"
  "CMakeFiles/comma_filters.dir/qcache_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/query_protocol.cc.o"
  "CMakeFiles/comma_filters.dir/query_protocol.cc.o.d"
  "CMakeFiles/comma_filters.dir/rdrop_filter.cc.o"
  "CMakeFiles/comma_filters.dir/rdrop_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/snoop_filter.cc.o"
  "CMakeFiles/comma_filters.dir/snoop_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/standard_set.cc.o"
  "CMakeFiles/comma_filters.dir/standard_set.cc.o.d"
  "CMakeFiles/comma_filters.dir/tcp_filter.cc.o"
  "CMakeFiles/comma_filters.dir/tcp_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/transform_filters.cc.o"
  "CMakeFiles/comma_filters.dir/transform_filters.cc.o.d"
  "CMakeFiles/comma_filters.dir/ttsf_filter.cc.o"
  "CMakeFiles/comma_filters.dir/ttsf_filter.cc.o.d"
  "CMakeFiles/comma_filters.dir/wsize_filter.cc.o"
  "CMakeFiles/comma_filters.dir/wsize_filter.cc.o.d"
  "libcomma_filters.a"
  "libcomma_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

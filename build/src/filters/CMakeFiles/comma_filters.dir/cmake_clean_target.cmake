file(REMOVE_RECURSE
  "libcomma_filters.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/comma_sim.dir/random.cc.o"
  "CMakeFiles/comma_sim.dir/random.cc.o.d"
  "CMakeFiles/comma_sim.dir/simulator.cc.o"
  "CMakeFiles/comma_sim.dir/simulator.cc.o.d"
  "CMakeFiles/comma_sim.dir/trace.cc.o"
  "CMakeFiles/comma_sim.dir/trace.cc.o.d"
  "libcomma_sim.a"
  "libcomma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

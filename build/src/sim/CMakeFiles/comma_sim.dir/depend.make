# Empty dependencies file for comma_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcomma_sim.a"
)

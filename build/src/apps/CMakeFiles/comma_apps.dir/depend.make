# Empty dependencies file for comma_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/comma_apps.dir/bulk.cc.o"
  "CMakeFiles/comma_apps.dir/bulk.cc.o.d"
  "CMakeFiles/comma_apps.dir/media.cc.o"
  "CMakeFiles/comma_apps.dir/media.cc.o.d"
  "CMakeFiles/comma_apps.dir/query.cc.o"
  "CMakeFiles/comma_apps.dir/query.cc.o.d"
  "CMakeFiles/comma_apps.dir/request_response.cc.o"
  "CMakeFiles/comma_apps.dir/request_response.cc.o.d"
  "libcomma_apps.a"
  "libcomma_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comma_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

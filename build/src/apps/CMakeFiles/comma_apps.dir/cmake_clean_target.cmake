file(REMOVE_RECURSE
  "libcomma_apps.a"
)

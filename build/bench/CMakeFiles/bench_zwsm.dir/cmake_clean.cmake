file(REMOVE_RECURSE
  "CMakeFiles/bench_zwsm.dir/bench_zwsm.cc.o"
  "CMakeFiles/bench_zwsm.dir/bench_zwsm.cc.o.d"
  "bench_zwsm"
  "bench_zwsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zwsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_zwsm.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_mobileip.
# This may be replaced when dependencies are built.

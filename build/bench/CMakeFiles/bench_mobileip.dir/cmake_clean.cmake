file(REMOVE_RECURSE
  "CMakeFiles/bench_mobileip.dir/bench_mobileip.cc.o"
  "CMakeFiles/bench_mobileip.dir/bench_mobileip.cc.o.d"
  "bench_mobileip"
  "bench_mobileip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mobileip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

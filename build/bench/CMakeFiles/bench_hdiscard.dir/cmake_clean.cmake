file(REMOVE_RECURSE
  "CMakeFiles/bench_hdiscard.dir/bench_hdiscard.cc.o"
  "CMakeFiles/bench_hdiscard.dir/bench_hdiscard.cc.o.d"
  "bench_hdiscard"
  "bench_hdiscard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hdiscard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

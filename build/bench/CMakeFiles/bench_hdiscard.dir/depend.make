# Empty dependencies file for bench_hdiscard.
# This may be replaced when dependencies are built.

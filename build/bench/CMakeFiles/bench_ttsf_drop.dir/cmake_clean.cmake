file(REMOVE_RECURSE
  "CMakeFiles/bench_ttsf_drop.dir/bench_ttsf_drop.cc.o"
  "CMakeFiles/bench_ttsf_drop.dir/bench_ttsf_drop.cc.o.d"
  "bench_ttsf_drop"
  "bench_ttsf_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ttsf_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

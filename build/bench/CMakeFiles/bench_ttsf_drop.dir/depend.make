# Empty dependencies file for bench_ttsf_drop.
# This may be replaced when dependencies are built.

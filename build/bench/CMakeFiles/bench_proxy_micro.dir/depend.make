# Empty dependencies file for bench_proxy_micro.
# This may be replaced when dependencies are built.

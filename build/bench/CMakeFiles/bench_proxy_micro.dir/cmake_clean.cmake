file(REMOVE_RECURSE
  "CMakeFiles/bench_proxy_micro.dir/bench_proxy_micro.cc.o"
  "CMakeFiles/bench_proxy_micro.dir/bench_proxy_micro.cc.o.d"
  "bench_proxy_micro"
  "bench_proxy_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_proxy_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

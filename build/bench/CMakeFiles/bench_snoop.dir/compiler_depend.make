# Empty compiler generated dependencies file for bench_snoop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_snoop.dir/bench_snoop.cc.o"
  "CMakeFiles/bench_snoop.dir/bench_snoop.cc.o.d"
  "bench_snoop"
  "bench_snoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_eem_traffic.dir/bench_eem_traffic.cc.o"
  "CMakeFiles/bench_eem_traffic.dir/bench_eem_traffic.cc.o.d"
  "bench_eem_traffic"
  "bench_eem_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eem_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

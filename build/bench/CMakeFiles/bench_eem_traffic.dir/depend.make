# Empty dependencies file for bench_eem_traffic.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_itcp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_itcp.dir/bench_itcp.cc.o"
  "CMakeFiles/bench_itcp.dir/bench_itcp.cc.o.d"
  "bench_itcp"
  "bench_itcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_itcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

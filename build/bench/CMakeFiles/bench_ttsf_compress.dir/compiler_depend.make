# Empty compiler generated dependencies file for bench_ttsf_compress.
# This may be replaced when dependencies are built.

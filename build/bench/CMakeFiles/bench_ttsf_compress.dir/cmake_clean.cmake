file(REMOVE_RECURSE
  "CMakeFiles/bench_ttsf_compress.dir/bench_ttsf_compress.cc.o"
  "CMakeFiles/bench_ttsf_compress.dir/bench_ttsf_compress.cc.o.d"
  "bench_ttsf_compress"
  "bench_ttsf_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ttsf_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_tcp_wireless.
# This may be replaced when dependencies are built.

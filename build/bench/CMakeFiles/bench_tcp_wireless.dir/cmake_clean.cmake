file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_wireless.dir/bench_tcp_wireless.cc.o"
  "CMakeFiles/bench_tcp_wireless.dir/bench_tcp_wireless.cc.o.d"
  "bench_tcp_wireless"
  "bench_tcp_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/transparent_compression.dir/transparent_compression.cpp.o"
  "CMakeFiles/transparent_compression.dir/transparent_compression.cpp.o.d"
  "transparent_compression"
  "transparent_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transparent_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

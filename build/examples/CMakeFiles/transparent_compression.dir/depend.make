# Empty dependencies file for transparent_compression.
# This may be replaced when dependencies are built.

# Empty dependencies file for mobileip_handoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mobileip_handoff.dir/mobileip_handoff.cpp.o"
  "CMakeFiles/mobileip_handoff.dir/mobileip_handoff.cpp.o.d"
  "mobileip_handoff"
  "mobileip_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobileip_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for disconnection_zwsm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/disconnection_zwsm.dir/disconnection_zwsm.cpp.o"
  "CMakeFiles/disconnection_zwsm.dir/disconnection_zwsm.cpp.o.d"
  "disconnection_zwsm"
  "disconnection_zwsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disconnection_zwsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

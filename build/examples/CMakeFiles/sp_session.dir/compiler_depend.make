# Empty compiler generated dependencies file for sp_session.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sp_session.dir/sp_session.cpp.o"
  "CMakeFiles/sp_session.dir/sp_session.cpp.o.d"
  "sp_session"
  "sp_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kati_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kati_shell.dir/kati_shell.cpp.o"
  "CMakeFiles/kati_shell.dir/kati_shell.cpp.o.d"
  "kati_shell"
  "kati_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kati_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

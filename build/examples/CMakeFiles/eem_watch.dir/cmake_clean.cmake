file(REMOVE_RECURSE
  "CMakeFiles/eem_watch.dir/eem_watch.cpp.o"
  "CMakeFiles/eem_watch.dir/eem_watch.cpp.o.d"
  "eem_watch"
  "eem_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eem_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

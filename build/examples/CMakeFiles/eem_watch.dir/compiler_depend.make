# Empty compiler generated dependencies file for eem_watch.
# This may be replaced when dependencies are built.

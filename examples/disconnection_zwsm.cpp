// Disconnection management with zero-window-size messages (thesis §8.2.2):
// the wsize filter, driven by the EEM's link-status interrupt, stalls the
// wired sender during an outage and restarts it the moment the mobile
// reconnects — while an unserviced connection backs off exponentially and
// dies.
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"

using namespace comma;

namespace {

struct RunResult {
  bool survived = false;
  size_t delivered = 0;
  double resume_seconds = 0;  // Outage end -> first new byte at mobile.
};

RunResult Run(bool with_zwsm, sim::Duration outage) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = 100 * sim::kMillisecond;
  core::CommaSystem comma(config);

  if (with_zwsm) {
    // The ack path runs mobile -> wired; that's where windows are rewritten.
    // ifindex 2 is the gateway's wireless interface (SNMP 1-based).
    proxy::StreamKey ack_path{comma.scenario().mobile_addr(), 80, net::Ipv4Address(), 0};
    std::string error;
    if (!comma.sp().AddService("launcher", ack_path, {"tcp", "wsize:zwsm:2"}, &error)) {
      std::fprintf(stderr, "setup: %s\n", error.c_str());
      std::exit(1);
    }
  }

  tcp::TcpConfig tcp_config;
  tcp_config.max_data_retries = 8;
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80, tcp_config);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(3'000'000), tcp_config);

  comma.sim().RunFor(3 * sim::kSecond);  // Stream in full flight.
  comma.scenario().wireless_link().SetUp(false);
  comma.sim().RunFor(outage);
  const size_t delivered_at_reconnect = sink.bytes_received();
  comma.scenario().wireless_link().SetUp(true);

  // Measure time until the mobile sees new bytes.
  const sim::TimePoint reconnect_at = comma.sim().Now();
  sim::TimePoint resumed_at = -1;
  while (comma.sim().Now() < reconnect_at + 300 * sim::kSecond) {
    comma.sim().RunFor(50 * sim::kMillisecond);
    if (resumed_at < 0 && sink.bytes_received() > delivered_at_reconnect) {
      resumed_at = comma.sim().Now();
      break;
    }
    if (sender.connection()->state() == tcp::TcpState::kClosed && !sender.finished()) {
      break;  // Connection aborted during/after the outage.
    }
  }

  RunResult result;
  result.survived = resumed_at >= 0;
  result.delivered = sink.bytes_received();
  result.resume_seconds =
      resumed_at >= 0 ? sim::DurationToSeconds(resumed_at - reconnect_at) : -1;
  return result;
}

}  // namespace

int main() {
  std::printf("ZWSM disconnection management (thesis 8.2.2)\n");
  std::printf("============================================\n");
  std::printf("A bulk stream suffers a wireless outage mid-transfer.\n\n");
  std::printf("%-10s %-12s %-10s %-18s\n", "outage", "service", "survived", "resume after (s)");

  for (sim::Duration outage : {30 * sim::kSecond, 120 * sim::kSecond, 400 * sim::kSecond}) {
    for (bool zwsm : {false, true}) {
      RunResult r = Run(zwsm, outage);
      std::printf("%-10s %-12s %-10s %-18s\n",
                  sim::FormatTime(outage).c_str(), zwsm ? "wsize:zwsm" : "none",
                  r.survived ? "yes" : "NO",
                  r.survived ? std::to_string(r.resume_seconds).substr(0, 6).c_str() : "-");
    }
  }
  std::printf(
      "\nWith ZWSM the sender parks in persist mode (alive indefinitely) and the\n"
      "injected window-update restarts it immediately; without it, backed-off\n"
      "retransmission timers stretch the resume time and eventually kill the\n"
      "connection outright.\n");
  return 0;
}

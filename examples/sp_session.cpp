// Reproduces the thesis's Service-Proxy interface example (§5.3.2,
// Fig. 5.3): a user "telnets" to port 12000 of the proxy — here, a Kati
// SP client over the simulated network — loads filters, adds and removes
// services, and reads reports.
#include <cstdio>

#include "src/core/comma_system.h"
#include "src/kati/sp_client.h"

using namespace comma;

namespace {

void Transact(core::CommaSystem& comma, kati::SpClient& client, const std::string& command) {
  std::printf("> %s\n", command.c_str());
  bool done = false;
  client.Send(command, [&](const std::string& response) {
    if (!response.empty()) {
      std::printf("%s", response.c_str());
    }
    done = true;
  });
  while (!done) {
    comma.sim().RunFor(50 * sim::kMillisecond);
  }
}

}  // namespace

int main() {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.load_filters = {"none"};  // Fresh proxy: nothing loaded yet.
  core::CommaSystem comma(config);

  std::printf("styx:~> telnet eramosa 12000\n");
  std::printf("Trying %s...\n", comma.scenario().gateway_wireless_addr().ToString().c_str());
  kati::SpClient client(&comma.scenario().mobile_host(),
                        comma.scenario().gateway_wireless_addr());
  comma.sim().RunFor(sim::kSecond);
  std::printf("Connected to eramosa.uwaterloo.ca.\nEscape character is '^]'.\n\n");

  // The session of Fig. 5.3.
  Transact(comma, client, "load tcp");
  Transact(comma, client, "load launcher");
  Transact(comma, client, "load wsize");
  Transact(comma, client, "load rdrop");
  Transact(comma, client, "add launcher 11.11.10.10 0 0.0.0.0 0 tcp wsize");
  Transact(comma, client, "add tcp 11.11.10.99 7 11.11.10.10 1169");
  Transact(comma, client, "add wsize 11.11.10.99 7 11.11.10.10 1169");
  Transact(comma, client, "report");
  std::printf("\n");
  Transact(comma, client, "add rdrop 11.11.10.99 7 11.11.10.10 1169 50");
  Transact(comma, client, "report");
  std::printf("\n");
  Transact(comma, client, "delete wsize 11.11.10.99 7 11.11.10.10 1169");
  Transact(comma, client, "report");

  std::printf("\n^]\ntelnet> quit\nConnection closed.\n");
  return 0;
}

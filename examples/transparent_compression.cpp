// Transparent compression (thesis §8.1.6) in the double-proxy arrangement
// (§10.2.4): tcompress+ttsf at the gateway, tdecompress+ttsf at the mobile.
// Neither TCP endpoint is modified or aware; both see the original byte
// stream, but the wireless hop carries compressed segments.
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"
#include "src/filters/ttsf_filter.h"

using namespace comma;

namespace {

// One transfer of 150 KB of compressible text over a 200 kbit/s hop.
struct RunResult {
  double seconds = 0;
  uint64_t wireless_bytes = 0;
  bool intact = false;
};

RunResult RunTransfer(bool with_compression) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.scenario.wireless.bandwidth_bps = 200'000;
  core::CommaSystem comma(config);

  proxy::StreamKey to_port{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
  std::string error;
  if (with_compression) {
    if (!comma.sp().AddService("launcher", to_port, {"tcp", "ttsf", "tcompress:lz"}, &error) ||
        !comma.MobileProxy().AddService("launcher", to_port, {"tcp", "ttsf", "tdecompress"},
                                        &error)) {
      std::fprintf(stderr, "service setup failed: %s\n", error.c_str());
      std::exit(1);
    }
  }

  const util::Bytes payload = apps::TextPayload(150'000);
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          payload);
  const uint64_t wireless_before = comma.scenario().wireless_link().stats(0).tx_bytes;
  while (!sender.finished() && comma.sim().Now() < 600 * sim::kSecond) {
    comma.sim().RunFor(100 * sim::kMillisecond);
  }
  comma.sim().RunFor(2 * sim::kSecond);  // Drain the close handshake.

  RunResult result;
  result.seconds = sim::DurationToSeconds(sender.finished_at() - sender.started_at());
  result.wireless_bytes = comma.scenario().wireless_link().stats(0).tx_bytes - wireless_before;
  result.intact = sink.received() == payload;
  return result;
}

}  // namespace

int main() {
  std::printf("Transparent compression over a 200 kbit/s wireless hop\n");
  std::printf("======================================================\n");
  std::printf("150 KB of compressible text, wired -> mobile.\n\n");

  RunResult plain = RunTransfer(false);
  RunResult squeezed = RunTransfer(true);

  std::printf("%-22s %12s %18s %10s\n", "configuration", "time (s)", "wireless bytes",
              "intact?");
  std::printf("%-22s %12.2f %18llu %10s\n", "plain TCP", plain.seconds,
              static_cast<unsigned long long>(plain.wireless_bytes),
              plain.intact ? "yes" : "NO");
  std::printf("%-22s %12.2f %18llu %10s\n", "tcompress + ttsf", squeezed.seconds,
              static_cast<unsigned long long>(squeezed.wireless_bytes),
              squeezed.intact ? "yes" : "NO");
  std::printf("\nspeedup: %.2fx, wireless volume: %.1f%% of original\n",
              plain.seconds / squeezed.seconds,
              100.0 * static_cast<double>(squeezed.wireless_bytes) /
                  static_cast<double>(plain.wireless_bytes));
  std::printf("\nBoth endpoints ran stock TCP; the proxies carried the whole trick.\n");
  return plain.intact && squeezed.intact ? 0 : 1;
}

// Content adaptation driven by measured link quality (docs/app-services.md).
//
// A mobile client streams layered media over HTTP through the gateway, with
// the content-aware `htype` filter configured for full quality (all three
// layers pass). Kati registers an interrupt watch on the gateway's wireless
// interface error counter:
//
//     watch ifInErrors 2 gt 10
//
// When the link turns bad mid-transfer and the EEM reports the drops, the
// shell's on_notify hook finds the htype filter on the live stream and cuts
// it to the base layer — set_max_layer(0) — so every byte still crossing
// the degraded hop is one the client's parser can consume. This is E16's
// content-aware discard made *adaptive*, the same measurement-to-control
// loop as `hdiscard auto`, but at HTTP message granularity.
#include <cstdio>

#include "src/apps/http.h"
#include "src/core/comma_system.h"
#include "src/filters/http_filters.h"

using namespace comma;

int main() {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;  // Clean until t=2s.
  config.eem.check_interval = 200 * sim::kMillisecond;
  config.eem.update_interval = sim::kSecond;
  core::CommaSystem comma(config);
  const net::Ipv4Address origin = comma.scenario().wired_addr();

  // Full-quality content-aware service on every stream toward the origin.
  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, origin, 80};
  if (!comma.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "hrewrite", "htype:2"},
                             &error)) {
    std::fprintf(stderr, "launcher: %s\n", error.c_str());
    return 1;
  }

  auto kati = comma.MakeKati([](const std::string& text) { std::fputs(text.c_str(), stdout); });

  // Interrupt the moment the wireless interface (ifindex 2 on the gateway)
  // has eaten more than 10 packets.
  kati->Execute("watch ifInErrors 2 gt 10");

  // The reaction: cut the live stream's htype filter to the base layer.
  bool adapted = false;
  kati->set_on_notify([&](const monitor::VariableId& id, const monitor::Value&) {
    if (adapted || id.name != "ifInErrors") {
      return;
    }
    for (const auto& [key, info] : comma.sp().streams()) {
      if (key.IsWildcard()) {
        continue;
      }
      auto* htype = dynamic_cast<filters::HtypeFilter*>(comma.sp().FindFilterOnKey(key, "htype"));
      if (htype != nullptr && htype->max_layer() != 0) {
        adapted = true;
        std::printf("hook: link degraded, htype max_layer %d -> 0 on %s\n", htype->max_layer(),
                    key.ToString().c_str());
        htype->set_max_layer(0);
        return;
      }
    }
  });

  // The traffic: a long layered-media fetch, pipelined on one connection.
  std::vector<apps::HttpRequestSpec> workload;
  for (int i = 0; i < 12; ++i) {
    workload.push_back({"GET", "/media/3/30/600", {}});
  }
  apps::HttpServer server(&comma.scenario().wired_host(), 80);
  apps::HttpClient client(&comma.scenario().mobile_host(), origin, 80, workload);

  // Two clean seconds, then the link turns bad and stays bad.
  comma.sim().RunFor(2 * sim::kSecond);
  std::printf("t=2s: wireless loss 0%% -> 8%%\n");
  comma.scenario().wireless_link().SetLossProbability(0.08);
  while (!client.finished() && comma.sim().Now() < 180 * sim::kSecond) {
    comma.sim().RunFor(100 * sim::kMillisecond);
  }

  std::printf("\n--- stats http ---\n%s", comma.sp().metrics().RenderText("http").c_str());
  std::printf("\nresponses=%zu useful_bytes=%llu adapted=%s finished=%s parse_failed=%s\n",
              client.responses_received(),
              static_cast<unsigned long long>(client.useful_bytes()), adapted ? "yes" : "no",
              client.finished() ? "yes" : "no", client.failed() ? "yes" : "no");
  // Success: the watch fired, the cut happened, and the client parsed the
  // whole (reduced) stream to completion on the degraded link.
  return (adapted && client.finished() && !client.failed()) ? 0 : 1;
}

// A Mobile IP walkthrough (thesis §2.1): registration, triangular routing,
// and a hand-off between two foreign networks while a TCP stream runs.
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/mobileip/scenario.h"

using namespace comma;

int main() {
  std::printf("Mobile IP hand-off walkthrough (thesis 2.1)\n");
  std::printf("===========================================\n\n");

  mobileip::MobileIpConfig config;
  config.wireless.loss_probability = 0.0;
  config.handoff_policy = mobileip::HandoffPolicy::kForward;
  mobileip::MobileIpScenario s(config);

  std::printf("[t=%s] mobile at home (%s); home agent %s\n",
              sim::FormatTime(s.sim().Now()).c_str(), s.mobile_home_addr().ToString().c_str(),
              s.ha_addr().ToString().c_str());

  s.MoveToForeign1();
  s.sim().RunFor(sim::kSecond);
  std::printf("[t=%s] moved to foreign network 1; care-of %s (hand-off took %.1f ms)\n",
              sim::FormatTime(s.sim().Now()).c_str(),
              s.client().current_care_of().ToString().c_str(),
              sim::DurationToSeconds(s.client().stats().last_handoff_latency) * 1000.0);

  // A TCP transfer from the correspondent, tunneled via the HA (triangular
  // routing: CH -> HA -> FA1 -> mobile, but mobile -> CH direct).
  apps::BulkSink sink(&s.mobile(), 80);
  apps::BulkSender sender(&s.correspondent(), s.mobile_home_addr(), 80,
                          apps::PatternPayload(400'000));
  s.sim().RunFor(2 * sim::kSecond);
  std::printf("[t=%s] transfer running: %zu bytes at mobile, %llu packets tunneled by HA\n",
              sim::FormatTime(s.sim().Now()).c_str(), sink.bytes_received(),
              static_cast<unsigned long long>(s.home_agent().stats().packets_tunneled));

  // Hand off to foreign network 2 mid-transfer.
  s.MoveToForeign2();
  s.sim().RunFor(2 * sim::kSecond);
  std::printf("[t=%s] handed off to foreign network 2; care-of %s\n",
              sim::FormatTime(s.sim().Now()).c_str(),
              s.client().current_care_of().ToString().c_str());
  std::printf("        old FA forwarded %llu in-flight packets to the new care-of address\n",
              static_cast<unsigned long long>(s.fa1().stats().packets_forwarded));

  while (!sender.finished() && s.sim().Now() < 300 * sim::kSecond) {
    s.sim().RunFor(sim::kSecond);
  }
  std::printf("[t=%s] transfer complete: %zu bytes, %llu end-to-end retransmissions\n",
              sim::FormatTime(s.sim().Now()).c_str(), sink.bytes_received(),
              static_cast<unsigned long long>(
                  sender.connection()->stats().bytes_retransmitted / 1000));

  s.MoveHome();
  s.sim().RunFor(sim::kSecond);
  std::printf("[t=%s] returned home; deregistered (HA tunnels: %llu total)\n",
              sim::FormatTime(s.sim().Now()).c_str(),
              static_cast<unsigned long long>(s.home_agent().stats().packets_tunneled));
  return sink.bytes_received() == 400'000 ? 0 : 1;
}

// Reproduces the thesis's EEM sample client (Fig. 6.2): register interest
// in SYS_UPTIME with COMMA_IN over [0, 2000] ticks (20 s; scaled from the
// thesis listing so a few in-range updates are visible), then poll the
// protected data area every ten seconds for two minutes, printing changes.
//
// The uptime here is the *gateway's* (an EEM server over the simulated
// network), measured in SNMP TimeTicks (hundredths of a second) — it leaves
// [0, 20] quickly, at which point updates stop arriving, exactly as the
// thesis program would observe.
#include <cstdio>

#include "src/core/comma_system.h"
#include "src/monitor/eem_client.h"

using namespace comma;

int main() {
  core::CommaSystemConfig config;
  config.eem.check_interval = 500 * sim::kMillisecond;
  config.eem.update_interval = 2 * sim::kSecond;
  core::CommaSystem comma(config);

  // comma_init(): the client lives on the mobile host.
  monitor::EemClient client(&comma.scenario().mobile_host());

  // comma_attr_*: lbound = 0, ubound = 20, operator COMMA_IN.
  monitor::Attr attr =
      monitor::Attr::Range(monitor::Op::kIn, int64_t{0}, int64_t{2000},
                           monitor::NotifyMode::kPeriodic);

  // comma_id_*: variable SYS_UPTIME on the gateway's EEM server.
  monitor::VariableId id;
  id.name = "sysUpTime";
  id.server = comma.scenario().gateway_wireless_addr();

  // comma_var_register().
  client.Register(id, attr);
  std::printf("main: register OK\n");

  // "Continually read from static store": poll every 10 s for 2 min.
  for (int i = 0; i < 12; ++i) {
    comma.sim().RunFor(10 * sim::kSecond);
    if (client.HasChanged(id)) {
      auto value = client.GetValue(id);
      std::printf("t=%-12s sysUpTime changed: %s ticks (in range [0,2000]: %s)\n",
                  sim::FormatTime(comma.sim().Now()).c_str(),
                  value ? monitor::ValueToString(*value).c_str() : "?",
                  client.IsInRange(id) ? "yes" : "no");
    } else {
      std::printf("t=%-12s no change (uptime left [0,2000]; server sends nothing)\n",
                  sim::FormatTime(comma.sim().Now()).c_str());
    }
  }

  // A one-shot poll for good measure (comma_query_getvalue_once).
  bool done = false;
  monitor::VariableId name_id;
  name_id.name = "sysName";
  name_id.server = comma.scenario().gateway_wireless_addr();
  client.GetValueOnce(name_id, [&](const monitor::VariableId&, const monitor::Value& v) {
    std::printf("one-shot poll: sysName = %s\n", monitor::ValueToString(v).c_str());
    done = true;
  });
  while (!done) {
    comma.sim().RunFor(100 * sim::kMillisecond);
  }

  // comma_term() on scope exit.
  std::printf("main: done\n");
  return 0;
}

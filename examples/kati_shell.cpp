// An interactive Kati session (thesis Ch. 7): you are the mobile user,
// controlling the Service Proxy and monitoring the network from your shell.
//
// A background bulk transfer and a media stream keep the proxy busy so
// `streams`, `report`, `netload`, and the service commands have something to
// show. Reads commands from stdin; with --demo it runs a scripted session.
//
// Try:  service list
//       service add realtime-thin 0.0.0.0 0 11.11.10.10 80
//       report
//       streams
//       watch ifOutQLen 2
//       vars
//       netload
#include <cstdio>
#include <iostream>

#include "src/apps/bulk.h"
#include "src/apps/media.h"
#include "src/core/comma_system.h"

using namespace comma;

namespace {

// Keeps traffic flowing so the shell has live streams to inspect.
struct BackgroundTraffic {
  explicit BackgroundTraffic(core::CommaSystem& comma)
      : sink(&comma.scenario().mobile_host(), 80),
        sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
               apps::TextPayload(50'000'000)),
        media_sink(&comma.scenario().mobile_host(), 5004),
        media(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), {}) {
    media.Start();
  }
  apps::BulkSink sink;
  apps::BulkSender sender;
  apps::MediaSink media_sink;
  apps::LayeredMediaSource media;
};

}  // namespace

int main(int argc, char** argv) {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.01;
  config.eem.check_interval = 500 * sim::kMillisecond;
  config.eem.update_interval = 2 * sim::kSecond;
  core::CommaSystem comma(config);
  BackgroundTraffic traffic(comma);

  auto shell = comma.MakeKati([](const std::string& text) { std::fputs(text.c_str(), stdout); });
  comma.sim().RunFor(2 * sim::kSecond);  // Let the handshakes settle.

  auto run_command = [&](const std::string& line) {
    const uint64_t before = shell->responses_received();
    shell->Execute(line);
    for (int step = 0; step < 100 && shell->responses_received() == before; ++step) {
      comma.sim().RunFor(100 * sim::kMillisecond);
    }
    comma.sim().RunFor(100 * sim::kMillisecond);
  };

  const bool demo = argc > 1 && std::string(argv[1]) == "--demo";
  std::printf("kati: connected to the service proxy at %s:12000 (type `help`, ^D quits)\n",
              comma.scenario().gateway_wireless_addr().ToString().c_str());

  if (demo) {
    for (const char* line :
         {"help", "service list", "service add monitored 0.0.0.0 0 11.11.10.10 80", "streams",
          "report", "poll sysUpTime", "netload"}) {
      std::printf("kati> %s\n", line);
      run_command(line);
    }
    return 0;
  }

  std::string line;
  std::printf("kati> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    run_command(line);
    std::printf("kati> ");
    std::fflush(stdout);
  }
  std::printf("\nConnection closed.\n");
  return 0;
}

// Quickstart: assemble the Comma system, add services to a live stream, and
// watch them take effect.
//
//   wired host ──(10 Mbit/s)── gateway+SP ──(1 Mbit/s, lossy)── mobile host
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"

using namespace comma;

int main() {
  std::printf("Comma quickstart: a proxied wireless path\n");
  std::printf("=========================================\n\n");

  // 1. The system: scenario + Service Proxy + EEM + command server.
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.02;  // A flaky wireless hop.
  core::CommaSystem comma(config);

  // 2. Services. The launcher watches every stream toward the mobile and
  //    applies the tcp housekeeping filter plus snoop local recovery.
  std::string error;
  proxy::StreamKey to_mobile{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 0};
  if (!comma.sp().AddService("launcher", to_mobile, {"tcp", "snoop"}, &error)) {
    std::fprintf(stderr, "add launcher: %s\n", error.c_str());
    return 1;
  }
  std::printf("services: launcher[tcp snoop] on %s\n\n", to_mobile.ToString().c_str());

  // 3. A workload: 200 KB from the wired host to the mobile.
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(200'000));

  // 4. Run and report.
  comma.sim().RunFor(60 * sim::kSecond);

  std::printf("transfer:   %zu / %zu bytes delivered in %s\n", sink.bytes_received(),
              sender.payload_size(), sim::FormatTime(sender.finished_at()).c_str());
  std::printf("goodput:    %.0f kbit/s over a 1000 kbit/s wireless hop\n",
              sender.GoodputBps() / 1000.0);
  std::printf("sender:     %llu bytes retransmitted end-to-end, %llu timeouts\n",
              static_cast<unsigned long long>(sender.connection()->stats().bytes_retransmitted),
              static_cast<unsigned long long>(sender.connection()->stats().retransmit_timeouts));
  std::printf("proxy:      %llu packets inspected, %llu streams seen\n",
              static_cast<unsigned long long>(comma.sp().stats().packets_inspected),
              static_cast<unsigned long long>(comma.sp().stats().streams_seen));

  std::printf("\nfilter report (thesis fig. 5.3 layout):\n");
  for (const auto& entry : comma.sp().Report()) {
    if (entry.keys.empty()) {
      continue;
    }
    std::printf("%s\n", entry.filter.c_str());
    for (const auto& key : entry.keys) {
      std::printf("\t%s\n", key.c_str());
    }
  }
  return 0;
}

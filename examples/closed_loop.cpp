// The observability control loop, end to end (docs/observability.md).
//
// A launcher thins a media-style stream with tdrop through the TTSF; every
// dropped byte is counted by the proxy's metric registry and — via the
// EemMetricsBridge — is readable as an ordinary EEM variable. Kati, running
// on the mobile host, registers an interrupt-mode watch on that variable:
//
//     watch ttsf.bytes_dropped gt 20000
//
// When the threshold crosses, the shell prints the notification and its
// on_notify hook reacts by loading transparent compression onto the very
// stream being thinned — third-party control driven by third-party
// measurement, with the application none the wiser.
#include <cstdio>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"
#include "src/util/strings.h"

using namespace comma;

int main() {
  core::CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = 200 * sim::kMillisecond;
  config.eem.update_interval = sim::kSecond;
  core::CommaSystem comma(config);

  // The standing service: any stream toward mobile port 80 gets tcp + ttsf
  // + 50% transparent drop (a stand-in for "stale media discard", §8.1.5).
  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
  if (!comma.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "tdrop:50:9"}, &error)) {
    std::fprintf(stderr, "launcher: %s\n", error.c_str());
    return 1;
  }

  auto kati = comma.MakeKati([](const std::string& text) { std::fputs(text.c_str(), stdout); });

  // The watch: interrupt the moment the proxy has discarded > 20 kB.
  kati->Execute("watch ttsf.bytes_dropped gt 20000");

  // The reaction: compress the stream the drops are coming from.
  bool compressed = false;
  kati->set_on_notify([&](const monitor::VariableId& id, const monitor::Value&) {
    if (compressed || id.name != "ttsf.bytes_dropped") {
      return;
    }
    for (const auto& [key, info] : comma.sp().streams()) {
      if (key.dst_port == 80 && !key.IsWildcard()) {
        compressed = true;
        std::printf("hook: loading tcompress on %s\n", key.ToString().c_str());
        kati->Execute(util::Format("add tcompress %s %u %s %u lz", key.src.ToString().c_str(),
                                   key.src_port, key.dst.ToString().c_str(), key.dst_port));
        return;
      }
    }
  });

  // Someone else's traffic.
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(500000));
  comma.sim().RunFor(90 * sim::kSecond);

  // What the registry saw, via the same command path Kati uses.
  std::printf("\n--- stats ttsf ---\n");
  std::printf("%s", comma.sp().metrics().RenderText("ttsf").c_str());
  std::printf("--- stats sp.filter.tcompress ---\n");
  std::printf("%s", comma.sp().metrics().RenderText("sp.filter.tcompress").c_str());
  std::printf("\nnotifies=%llu compressed=%s delivered=%llu\n",
              static_cast<unsigned long long>(kati->notifies_printed()),
              compressed ? "yes" : "no",
              static_cast<unsigned long long>(sink.bytes_received()));
  return compressed ? 0 : 1;
}

#include "tests/sim/determinism_harness.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace comma::testing {

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

std::string FirstDifference(const std::string& a, const std::string& b) {
  if (a == b) {
    return "";
  }
  const std::vector<std::string> la = SplitLines(a);
  const std::vector<std::string> lb = SplitLines(b);
  const size_t n = std::min(la.size(), lb.size());
  for (size_t i = 0; i < n; ++i) {
    if (la[i] != lb[i]) {
      return "line " + std::to_string(i + 1) + ":\n  a: " + la[i] + "\n  b: " + lb[i];
    }
  }
  return "line " + std::to_string(n + 1) + ": one witness ends (" + std::to_string(la.size()) +
         " vs " + std::to_string(lb.size()) + " lines)";
}

std::string FilterWallClockMetrics(const std::string& metrics_text) {
  std::string out;
  for (const std::string& line : SplitLines(metrics_text)) {
    if (line.find("barrier_wait_us") != std::string::npos) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

void ExpectDeterministicAcrossWorkerCounts(const std::string& label, const WitnessRunner& runner,
                                           std::initializer_list<int> worker_counts) {
  const std::string reference = runner(1);
  ASSERT_FALSE(reference.empty()) << label << ": serial reference witness is empty";
  for (const int workers : worker_counts) {
    const std::string witness = runner(workers);
    EXPECT_EQ(reference, witness)
        << label << ": witness diverged at " << workers
        << " workers; first difference at " << FirstDifference(reference, witness);
  }
}

}  // namespace comma::testing

// Differential determinism suite for the region-sharded simulator
// (ROADMAP "parallel simulator"; docs/parallel-sim.md): the exact runs the
// serial fault suite and chaos soak pin down are re-run partitioned, at 1,
// 2, 4, and 8 workers, and every witness — applied-fault logs, delivered
// bytes, link counters, metric snapshots, completion times — must be
// byte-identical to the serial reference. Suites are named Parallel* so CI
// can select them under TSan (ctest -R '^Par').
#include <gtest/gtest.h>

#include "src/core/chaos.h"
#include "src/core/comma_system.h"
#include "src/core/multi_gateway.h"
#include "src/sim/witness.h"
#include "src/util/strings.h"
#include "tests/sim/determinism_harness.h"

namespace comma {
namespace {

// --- The fault-suite run, partitioned -------------------------------------
// Mirrors tests/faults/determinism_test.cc FaultedRun: lossy wireless link,
// launcher+ttsf in the path, a scripted flap and EEM outage, one bulk
// transfer — but with the scenario split into wired/wireless regions and
// the full witness rendered as a string.
std::string PartitionedFaultedRun(uint64_t seed, int workers) {
  core::CommaSystemConfig cfg;
  cfg.scenario.seed = seed;
  cfg.scenario.wireless.loss_probability = 0.02;
  cfg.scenario.partition_regions = true;
  cfg.scenario.sim.num_workers = workers;
  cfg.eem.check_interval = 200 * sim::kMillisecond;
  cfg.eem.update_interval = 500 * sim::kMillisecond;
  core::CommaSystem system(cfg);
  sim::Simulator& sim = system.sim();

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_addr(), 80};
  EXPECT_TRUE(system.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "tdrop:0:5"}, &error))
      << error;

  std::unique_ptr<monitor::EemClient> client;
  util::Bytes received;
  bool completed = false;
  {
    sim::ScopedRegion in_wireless(&sim, system.scenario().wireless_region());
    client = std::make_unique<monitor::EemClient>(&system.scenario().mobile_host());
    monitor::VariableId var;
    var.name = "sysUpTime";
    var.server = system.scenario().gateway_wireless_addr();
    client->Register(var, monitor::Attr::Always());

    system.scenario().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
      conn->set_on_data([&](const util::Bytes& data) {
        received.insert(received.end(), data.begin(), data.end());
      });
      conn->set_on_remote_close([conn] { conn->Close(); });
      conn->set_on_closed([&] { completed = true; });
    });
  }

  system.ScheduleLinkFlap(system.scenario().wireless_link(), 2 * sim::kSecond, 3 * sim::kSecond,
                          "wireless");
  system.ScheduleEemOutage(4 * sim::kSecond, 6 * sim::kSecond);
  system.ArmFaults();

  util::Bytes payload(120'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + (i >> 7));
  }
  tcp::TcpConnection* sender;
  {
    sim::ScopedRegion in_wired(&sim, system.scenario().wired_region());
    sender = system.scenario().wired_host().tcp().Connect(system.scenario().mobile_addr(), 80);
  }
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [sender, remaining] {
    while (!remaining->empty()) {
      const size_t n = sender->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    sender->Close();
  };
  sender->set_on_connected(pump);
  sender->set_on_writable(pump);

  sim.RunFor(300 * sim::kSecond);
  EXPECT_TRUE(completed) << "seed " << seed << " workers " << workers;

  std::string witness = system.fault_plan().AppliedLog();
  witness += util::Format("received bytes=%zu hash=%016llx\n", received.size(),
                          static_cast<unsigned long long>(sim::WitnessHash(
                              std::string(received.begin(), received.end()))));
  for (int side = 0; side < 2; ++side) {
    const net::LinkSideStats& s = system.scenario().wireless_link().stats(side);
    witness += util::Format("wireless[%d] rx=%llu drops=%llu\n", side,
                            static_cast<unsigned long long>(s.rx_packets),
                            static_cast<unsigned long long>(s.drops_error + s.drops_down));
  }
  witness += testing::FilterWallClockMetrics(system.sp().metrics().RenderText("tcp"));
  witness += testing::FilterWallClockMetrics(system.sp().metrics().RenderText("sim"));
  witness += util::Format("events=%llu epochs=%llu\n",
                          static_cast<unsigned long long>(sim.EventsRun()),
                          static_cast<unsigned long long>(sim.epochs()));
  return witness;
}

TEST(ParallelFaultSuiteTest, FaultedRunWitnessIsWorkerCountInvariant) {
  for (const uint64_t seed : {7u, 11u}) {
    testing::ExpectDeterministicAcrossWorkerCounts(
        "faulted-run seed " + std::to_string(seed),
        [seed](int workers) { return PartitionedFaultedRun(seed, workers); });
  }
}

TEST(ParallelFaultSuiteTest, PartitionedRunActuallyShards) {
  core::ScenarioConfig cfg;
  cfg.partition_regions = true;
  core::WirelessScenario scenario(cfg);
  EXPECT_EQ(scenario.sim().RegionCount(), 3u);
  EXPECT_NE(scenario.wired_region(), scenario.wireless_region());
  EXPECT_TRUE(scenario.wired_link().cross_region());
  EXPECT_FALSE(scenario.wireless_link().cross_region());
}

// --- The chaos soak, partitioned ------------------------------------------
std::string PartitionedChaosRun(uint64_t seed, int workers) {
  core::ChaosOptions options;
  options.seed = seed;
  options.partition_regions = true;
  options.num_workers = workers;
  const core::ChaosResult r = core::RunChaosScenario(options);
  std::string witness = r.fault_log + testing::FilterWallClockMetrics(r.metrics);
  witness += util::Format("crash_at=%lld takeover_at=%lld finished_at=%lld\n",
                          static_cast<long long>(r.crash_at),
                          static_cast<long long>(r.takeover_at),
                          static_cast<long long>(r.finished_at));
  for (const core::ChaosStreamOutcome& s : r.streams) {
    witness += util::Format("port=%u bytes=%llu complete=%d last_byte_at=%lld\n", s.port,
                            static_cast<unsigned long long>(s.bytes), s.complete ? 1 : 0,
                            static_cast<long long>(s.last_byte_at));
  }
  return witness;
}

TEST(ParallelChaosTest, ChaosWitnessIsWorkerCountInvariant) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    testing::ExpectDeterministicAcrossWorkerCounts(
        "chaos seed " + std::to_string(seed),
        [seed](int workers) { return PartitionedChaosRun(seed, workers); });
  }
}

TEST(ParallelChaosTest, PartitionedChaosStillRecovers) {
  core::ChaosOptions options;
  options.seed = 7;
  options.partition_regions = true;
  options.num_workers = 4;
  const core::ChaosResult r = core::RunChaosScenario(options);
  EXPECT_GT(r.crash_at, 0u);
  EXPECT_GT(r.takeover_at, r.crash_at);
  EXPECT_TRUE(r.all_completed) << r.metrics;
}

// --- The multi-gateway scenario -------------------------------------------
std::string MultiGatewayRun(uint64_t seed, int workers, bool with_flaps) {
  core::MultiGatewayConfig cfg;
  cfg.seed = seed;
  cfg.sim.num_workers = workers;
  cfg.with_flaps = with_flaps;
  core::MultiGatewayScenario scenario(cfg);
  scenario.StartTraffic();
  scenario.sim().RunFor(120 * sim::kSecond);
  EXPECT_TRUE(scenario.AllCompleted()) << "seed " << seed << " workers " << workers << "\n"
                                       << scenario.StreamWitness();
  return scenario.Witness();
}

TEST(ParallelMultiGatewayTest, WitnessIsWorkerCountInvariant) {
  testing::ExpectDeterministicAcrossWorkerCounts(
      "multi-gateway seed 42", [](int workers) { return MultiGatewayRun(42, workers, true); });
}

TEST(ParallelMultiGatewayTest, CleanRunWitnessIsWorkerCountInvariant) {
  testing::ExpectDeterministicAcrossWorkerCounts(
      "multi-gateway seed 3 (no faults)",
      [](int workers) { return MultiGatewayRun(3, workers, false); });
}

TEST(ParallelMultiGatewayTest, DifferentSeedsDiverge) {
  const std::string a = MultiGatewayRun(42, 4, true);
  const std::string b = MultiGatewayRun(43, 4, true);
  EXPECT_NE(a, b) << "different seeds produced identical witnesses";
}

TEST(ParallelMultiGatewayTest, ParallelRunExercisesTheEpochLoop) {
  core::MultiGatewayConfig cfg;
  cfg.sim.num_workers = 4;
  core::MultiGatewayScenario scenario(cfg);
  scenario.StartTraffic();
  scenario.sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(scenario.sim().RegionCount(), 5u);  // Backbone + 4 clusters.
  EXPECT_GT(scenario.sim().epochs(), 0u);
  EXPECT_GT(scenario.sim().cross_region_events(), 0u);
}

}  // namespace
}  // namespace comma

// Worker-count invariance for the application-layer service tier: the full
// HTTP workload — pipelined mixed-content requests through launcher + ttsf +
// hrewrite + htype over a lossy wireless hop — re-run partitioned at 1, 2,
// 4, and 8 workers, with every witness (response bodies, http/tcp metric
// snapshots, event counts) byte-identical to the serial reference. Content
// rewriting happens at the gateway between the regions, so this pins the
// reassembler/TTSF protocol under epoch-parallel execution. The suite name
// starts with Http so the http CI job selects it (ctest -R '^Http|...').
#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/apps/http.h"
#include "src/core/comma_system.h"
#include "src/sim/witness.h"
#include "src/util/strings.h"
#include "tests/sim/determinism_harness.h"

namespace comma {
namespace {

std::string PartitionedHttpRun(uint64_t seed, int workers) {
  core::CommaSystemConfig cfg;
  cfg.scenario.seed = seed;
  cfg.scenario.wireless.loss_probability = 0.02;
  cfg.scenario.partition_regions = true;
  cfg.scenario.sim.num_workers = workers;
  cfg.start_command_server = false;
  cfg.start_eem = false;
  core::CommaSystem system(cfg);
  sim::Simulator& sim = system.sim();

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().wired_addr(), 80};
  EXPECT_TRUE(system.sp().AddService("launcher", wildcard,
                                     {"tcp", "ttsf", "hrewrite", "htype:1"}, &error))
      << error;

  std::unique_ptr<apps::HttpServer> server;
  {
    sim::ScopedRegion in_wired(&sim, system.scenario().wired_region());
    server = std::make_unique<apps::HttpServer>(&system.scenario().wired_host(), 80);
  }
  const std::vector<apps::HttpRequestSpec> requests = {
      {"GET", "/text/12000", {}},  {"GET", "/media/3/20/400", {}},
      {"GET", "/image/8000", {}},  {"POST", "/upload", apps::PatternPayload(1200)},
      {"GET", "/text/6000", {}},
  };
  std::unique_ptr<apps::HttpClient> client;
  {
    sim::ScopedRegion in_wireless(&sim, system.scenario().wireless_region());
    client = std::make_unique<apps::HttpClient>(&system.scenario().mobile_host(),
                                                system.scenario().wired_addr(), 80, requests);
  }

  sim.RunFor(120 * sim::kSecond);
  EXPECT_TRUE(client->finished()) << "seed " << seed << " workers " << workers;
  EXPECT_FALSE(client->failed()) << "seed " << seed << " workers " << workers;

  std::string bodies;
  std::string witness =
      util::Format("responses=%zu useful=%llu failed=%d served=%llu\n",
                   client->responses_received(),
                   static_cast<unsigned long long>(client->useful_bytes()),
                   client->failed() ? 1 : 0,
                   static_cast<unsigned long long>(server->requests_served()));
  for (const auto& resp : client->responses()) {
    bodies += util::ToString(resp.body);
  }
  witness += util::Format("bodies bytes=%zu hash=%016llx\n", bodies.size(),
                          static_cast<unsigned long long>(sim::WitnessHash(bodies)));
  witness += testing::FilterWallClockMetrics(system.sp().metrics().RenderText("http"));
  witness += testing::FilterWallClockMetrics(system.sp().metrics().RenderText("tcp"));
  witness += util::Format("events=%llu epochs=%llu\n",
                          static_cast<unsigned long long>(sim.EventsRun()),
                          static_cast<unsigned long long>(sim.epochs()));
  return witness;
}

TEST(HttpParallelTest, WitnessIsWorkerCountInvariant) {
  for (const uint64_t seed : {5u, 21u}) {
    testing::ExpectDeterministicAcrossWorkerCounts(
        "http seed " + std::to_string(seed),
        [seed](int workers) { return PartitionedHttpRun(seed, workers); });
  }
}

}  // namespace
}  // namespace comma

#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace comma::sim {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Simulator sim;
  Tracer tracer(&sim);
  EXPECT_FALSE(tracer.Enabled(TraceLevel::kError));
  tracer.Log(TraceLevel::kError, "x", "should not crash");
}

TEST(TraceTest, SinkReceivesRecords) {
  Simulator sim;
  Tracer tracer(&sim);
  std::vector<TraceRecord> records;
  tracer.SetSink([&](const TraceRecord& r) { records.push_back(r); });
  sim.Schedule(250, [&] { tracer.Log(TraceLevel::kInfo, "link", "hello"); });
  sim.Run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].when, 250);
  EXPECT_EQ(records[0].component, "link");
  EXPECT_EQ(records[0].message, "hello");
}

TEST(TraceTest, LevelFiltering) {
  Simulator sim;
  Tracer tracer(&sim);
  int count = 0;
  tracer.SetSink([&](const TraceRecord&) { ++count; });
  tracer.SetLevel(TraceLevel::kWarn);
  tracer.Log(TraceLevel::kError, "x", "1");
  tracer.Log(TraceLevel::kWarn, "x", "2");
  tracer.Log(TraceLevel::kInfo, "x", "3");
  tracer.Log(TraceLevel::kDebug, "x", "4");
  EXPECT_EQ(count, 2);
}

TEST(TraceTest, LogfFormats) {
  Simulator sim;
  Tracer tracer(&sim);
  std::string last;
  tracer.SetSink([&](const TraceRecord& r) { last = r.message; });
  tracer.Logf(TraceLevel::kInfo, "x", "value=%d name=%s", 42, "foo");
  EXPECT_EQ(last, "value=42 name=foo");
}

TEST(TraceTest, SetSinkReturnsPrevious) {
  Simulator sim;
  Tracer tracer(&sim);
  tracer.SetSink([](const TraceRecord&) {});
  auto prev = tracer.SetSink(nullptr);
  EXPECT_TRUE(prev != nullptr);
  EXPECT_FALSE(tracer.Enabled(TraceLevel::kError));
}

TEST(TraceTest, LevelNames) {
  EXPECT_STREQ(TraceLevelName(TraceLevel::kError), "error");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kWarn), "warn");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kInfo), "info");
  EXPECT_STREQ(TraceLevelName(TraceLevel::kDebug), "debug");
}

}  // namespace
}  // namespace comma::sim

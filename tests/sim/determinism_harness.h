// Differential determinism harness for the region-sharded simulator
// (docs/parallel-sim.md, "Proving it").
//
// The PDES determinism contract is *relative*: for a fixed scenario,
// partitioning, and seed, the run's observable outcome must be bit-identical
// at every worker count. This harness states that contract once: a test
// provides a runner that builds the scenario with N workers and returns its
// full witness string (trace, fault log, filtered metrics, per-stream
// bytes); the harness runs it serially (1 worker, the reference) and at each
// requested worker count, byte-comparing every witness against the
// reference and pinpointing the first divergent line on failure.
#ifndef COMMA_TESTS_SIM_DETERMINISM_HARNESS_H_
#define COMMA_TESTS_SIM_DETERMINISM_HARNESS_H_

#include <functional>
#include <initializer_list>
#include <string>

namespace comma::testing {

// Produces the witness of one full simulation run at `workers` workers.
// Must build a fresh scenario each call: runs share nothing but the seed.
using WitnessRunner = std::function<std::string(int workers)>;

// Runs `runner(1)` as the reference, then `runner(n)` for each n, expecting
// every witness to equal the reference byte for byte. `label` prefixes
// failure messages (include the seed).
void ExpectDeterministicAcrossWorkerCounts(const std::string& label, const WitnessRunner& runner,
                                           std::initializer_list<int> worker_counts = {2, 4, 8});

// Strips wall-clock metric lines — sim.barrier_wait_us is real elapsed time
// on the barrier, legitimately different every run — from a RenderText
// snapshot so the rest can join a witness.
std::string FilterWallClockMetrics(const std::string& metrics_text);

// Human-readable location of the first difference between two witnesses:
// "line N:\n  a: ...\n  b: ...", or "" when equal.
std::string FirstDifference(const std::string& a, const std::string& b);

}  // namespace comma::testing

#endif  // COMMA_TESTS_SIM_DETERMINISM_HARNESS_H_

#include "src/sim/random.h"

#include <gtest/gtest.h>

#include <set>

namespace comma::sim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, NextBelowRespectsBound) {
  Random r(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
  }
  EXPECT_EQ(r.NextBelow(0), 0u);
  EXPECT_EQ(r.NextBelow(1), 0u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
    EXPECT_FALSE(r.Bernoulli(-1.0));
    EXPECT_TRUE(r.Bernoulli(2.0));
  }
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.Bernoulli(0.3)) {
      ++hits;
    }
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RandomTest, ExponentialHasRequestedMean) {
  Random r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += r.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(RandomTest, ExponentialZeroMeanIsZero) {
  Random r(19);
  EXPECT_EQ(r.Exponential(0.0), 0.0);
  EXPECT_EQ(r.Exponential(-1.0), 0.0);
}

TEST(RandomTest, UniformIntCoversRangeInclusive) {
  Random r(23);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, UniformIntDegenerateRange) {
  Random r(29);
  EXPECT_EQ(r.UniformInt(5, 5), 5);
  EXPECT_EQ(r.UniformInt(9, 2), 9);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Random a(31);
  Random b = a.Fork();
  // The fork must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, ForkIsDeterministic) {
  Random a(37);
  Random b(37);
  Random fa = a.Fork();
  Random fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

}  // namespace
}  // namespace comma::sim

// Event-ordering contracts of the region-sharded simulator: same-timestamp
// FIFO, schedule-time clamps, timer-cancel interactions with epoch
// boundaries, TimerId staleness across Reset(), and the cross-region
// ordering/lookahead rules (docs/parallel-sim.md, "The total order").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/check.h"

namespace comma::sim {
namespace {

// --- Single-region ordering ------------------------------------------------

TEST(SimulatorOrderTest, SameTimestampEventsRunInInsertionOrder) {
  Simulator sim;
  std::string order;
  for (char c = 'a'; c <= 'f'; ++c) {
    sim.Schedule(10, [&order, c] { order += c; });
  }
  sim.Run();
  EXPECT_EQ(order, "abcdef");
}

TEST(SimulatorOrderTest, EventsScheduledInsideAnEventKeepFifoAtTheSameInstant) {
  Simulator sim;
  std::string order;
  sim.Schedule(5, [&] {
    order += 'a';
    // Zero-delay children run at the same instant, after already-queued
    // same-time events, in the order they were scheduled.
    sim.Schedule(0, [&] { order += 'c'; });
    sim.Schedule(0, [&] { order += 'd'; });
  });
  sim.Schedule(5, [&] { order += 'b'; });
  sim.Run();
  EXPECT_EQ(order, "abcd");
}

TEST(SimulatorOrderTest, NegativeDelayClampsToNow) {
  Simulator sim;
  std::vector<TimePoint> at;
  sim.Schedule(100, [&] {
    sim.Schedule(-50, [&] { at.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 100);
}

TEST(SimulatorOrderTest, ScheduleAtInThePastClampsToNow) {
  Simulator sim;
  std::vector<TimePoint> at;
  sim.Schedule(200, [&] {
    sim.ScheduleAt(50, [&] { at.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 200);
}

TEST(SimulatorOrderTest, RunUntilIsInclusiveAndAdvancesTheClock) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(100, [&] { ++ran; });
  sim.Schedule(101, [&] { ++ran; });
  sim.RunUntil(100);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 100);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

// --- Timers ----------------------------------------------------------------

TEST(SimulatorOrderTest, CancelledTimerNeverFiresAndCancelReportsPending) {
  Simulator sim;
  int fired = 0;
  const TimerId id = sim.ScheduleTimer(100, [&] { ++fired; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.IsPending(id));
  EXPECT_FALSE(sim.Cancel(id));  // Second cancel: already gone.
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorOrderTest, TimerCancelledAtItsOwnDeadlineDoesNotFire) {
  Simulator sim;
  int fired = 0;
  TimerId victim = kInvalidTimerId;
  // Both events sit at t=100; the canceller was scheduled first, so it runs
  // first and the victim must not fire.
  sim.Schedule(100, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  victim = sim.ScheduleTimer(100, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorResetTest, StaleTimerIdAcrossResetIsACheckedNoOp) {
  Simulator sim;
  int fired = 0;
  const TimerId stale = sim.ScheduleTimer(100, [&] { ++fired; });
  EXPECT_TRUE(sim.IsPending(stale));
  sim.Reset();
  // The generation bumped: the old id must not cancel (or report pending
  // for) a fresh timer that recycled its counter.
  const TimerId fresh = sim.ScheduleTimer(100, [&] { ++fired; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(sim.IsPending(stale));
  EXPECT_FALSE(sim.Cancel(stale));
  EXPECT_TRUE(sim.IsPending(fresh));
  sim.Run();
  EXPECT_EQ(fired, 1);  // Only the post-Reset timer fired.
}

TEST(SimulatorResetTest, ResetRewindsClockQueueAndCounters) {
  Simulator sim;
  sim.Schedule(50, [] {});
  sim.Schedule(500, [] {});
  sim.RunUntil(100);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.EventsRun(), 1u);
  sim.Reset();
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.QueueSize(), 0u);
  EXPECT_EQ(sim.EventsRun(), 0u);
}

// --- Multi-region ordering -------------------------------------------------

// A two-region fixture with a registered edge (lookahead 10).
class ParallelOrderTest : public ::testing::Test {
 protected:
  ParallelOrderTest() {
    other_ = sim_.AddRegion("other");
    sim_.RegisterCrossRegionEdge(kMainRegion, other_, 10);
  }

  Simulator sim_;
  RegionId other_ = kMainRegion;
};

TEST_F(ParallelOrderTest, SameInstantRunsLowerRegionFirst) {
  std::string order;
  {
    ScopedRegion in_other(&sim_, other_);
    sim_.Schedule(100, [&] { order += 'b'; });
  }
  sim_.Schedule(100, [&] { order += 'a'; });
  sim_.Run();
  // Region 0 drains before region 1 at the same timestamp, regardless of
  // scheduling order.
  EXPECT_EQ(order, "ab");
}

TEST_F(ParallelOrderTest, CrossRegionSendArrivesAtTheStampedTime) {
  std::vector<TimePoint> at;
  sim_.Schedule(0, [&] {
    sim_.ScheduleInRegion(other_, 10, [&] { at.push_back(sim_.Now()); });
  });
  sim_.Run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 10);
}

TEST_F(ParallelOrderTest, CrossRegionArrivalsInterleaveDeterministically) {
  // Ping-pong across the edge: each side schedules the next hop at
  // +lookahead. The trace must be the strict alternation the timestamps
  // dictate, independent of worker count.
  std::string trace;
  std::function<void(int)> hop = [&](int depth) {
    trace += (sim_.CurrentRegion() == kMainRegion) ? 'm' : 'o';
    if (depth == 0) {
      return;
    }
    const RegionId target = sim_.CurrentRegion() == kMainRegion ? other_ : kMainRegion;
    sim_.ScheduleInRegion(target, 10, [&hop, depth] { hop(depth - 1); });
  };
  sim_.Schedule(0, [&hop] { hop(6); });
  sim_.Run();
  EXPECT_EQ(trace, "momomom");
}

TEST_F(ParallelOrderTest, CrossRegionDelayBelowLookaheadIsChecked) {
  util::ScopedCheckThrow guard;
  sim_.Schedule(0, [&] {
    EXPECT_THROW(sim_.ScheduleInRegion(other_, 5, [] {}), util::CheckFailure);
  });
  sim_.Run();
}

TEST_F(ParallelOrderTest, SendOnUnregisteredEdgeIsChecked) {
  const RegionId third = sim_.AddRegion("third");
  util::ScopedCheckThrow guard;
  sim_.Schedule(0, [&] {
    EXPECT_THROW(sim_.ScheduleInRegion(third, 100, [] {}), util::CheckFailure);
  });
  sim_.Run();
}

TEST_F(ParallelOrderTest, TimerCancelAcrossEpochBoundaries) {
  // A timer deep in the future survives many epochs (horizon = +10 per
  // epoch with this edge), then is cancelled from its own region just
  // before it would fire.
  int fired = 0;
  TimerId id = kInvalidTimerId;
  {
    ScopedRegion in_other(&sim_, other_);
    id = sim_.ScheduleTimer(95, [&] { ++fired; });
    sim_.Schedule(90, [&] { EXPECT_TRUE(sim_.Cancel(id)); });
  }
  // Keep both regions busy so many epochs pass.
  for (TimePoint t = 1; t <= 100; t += 7) {
    sim_.Schedule(t, [] {});
  }
  sim_.Run();
  EXPECT_EQ(fired, 0);
}

TEST_F(ParallelOrderTest, WorkerCountDoesNotChangeTheOrder) {
  // The contract is per-region order (the interleaving of two regions
  // *within* an epoch is concurrent by design), so each region records its
  // own trace; both must be worker-count invariant.
  const auto run = [](int workers) {
    Simulator sim(SimulatorOptions{workers});
    const RegionId other = sim.AddRegion("other");
    sim.RegisterCrossRegionEdge(kMainRegion, other, 10);
    std::string main_trace;
    std::string other_trace;
    for (int i = 0; i < 5; ++i) {
      sim.Schedule(i * 3, [&main_trace, i] { main_trace += static_cast<char>('0' + i); });
      ScopedRegion in_other(&sim, other);
      sim.Schedule(i * 3, [&other_trace, i] { other_trace += static_cast<char>('a' + i); });
    }
    // Bounce a cross-region message so the epochs actually interact.
    sim.Schedule(0, [&sim, other, &main_trace] {
      sim.ScheduleInRegion(other, 10, [&sim, &main_trace] {
        sim.ScheduleInRegion(kMainRegion, 10, [&main_trace] { main_trace += '!'; });
      });
    });
    sim.Run();
    return main_trace + "|" + other_trace;
  };
  const std::string serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

}  // namespace
}  // namespace comma::sim

#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace comma::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.QueueSize(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  bool ran = false;
  sim.Schedule(-50, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, ScheduleAtPastTimeClampsToNow) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  TimePoint seen = -1;
  sim.ScheduleAt(10, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<TimePoint> times;
  sim.Schedule(10, [&] {
    times.push_back(sim.Now());
    sim.Schedule(10, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<TimePoint>{10, 20}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(i * 10, [&] { ++count; });
  }
  sim.RunUntil(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(12345);
  EXPECT_EQ(sim.Now(), 12345);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.RunUntil(100);
  int count = 0;
  sim.Schedule(50, [&] { ++count; });
  sim.Schedule(150, [&] { ++count; });
  sim.RunFor(100);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 200);
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(i, [&] { ++count; });
  }
  EXPECT_EQ(sim.Run(10), 10u);
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, TimerCancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  TimerId id = sim.ScheduleTimer(100, [&] { ran = true; });
  EXPECT_TRUE(sim.IsPending(id));
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.IsPending(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, TimerCancelAfterFireReturnsFalse) {
  Simulator sim;
  TimerId id = sim.ScheduleTimer(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.IsPending(id));
}

TEST(SimulatorTest, CancelOneOfManyTimers) {
  Simulator sim;
  std::vector<int> fired;
  TimerId a = sim.ScheduleTimer(10, [&] { fired.push_back(1); });
  sim.ScheduleTimer(20, [&] { fired.push_back(2); });
  sim.ScheduleTimer(30, [&] { fired.push_back(3); });
  sim.Cancel(a);
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{2, 3}));
}

TEST(SimulatorTest, EventsRunCounterCountsOnlyExecuted) {
  Simulator sim;
  TimerId id = sim.ScheduleTimer(5, [] {});
  sim.Schedule(10, [] {});
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(sim.EventsRun(), 1u);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
}

TEST(TimeTest, FormatTimeRendersSeconds) {
  EXPECT_EQ(FormatTime(0), "0.000000s");
  EXPECT_EQ(FormatTime(1500000), "1.500000s");
  EXPECT_EQ(FormatTime(42), "0.000042s");
}

TEST(TimeTest, SecondsConversionRoundTrips) {
  EXPECT_EQ(SecondsToDuration(1.5), 1500000);
  EXPECT_DOUBLE_EQ(DurationToSeconds(2500000), 2.5);
}

}  // namespace
}  // namespace comma::sim

// Kati over the simulated network (thesis Ch. 7 + the §5.3.2 interface
// example): the shell on the mobile host controls the SP on the gateway
// through TCP port 12000 and monitors the gateway's EEM.
#include "src/kati/shell.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"

namespace comma::kati {
namespace {

class KatiTest : public ::testing::Test {
 protected:
  KatiTest() {
    core::CommaSystemConfig cfg;
    cfg.scenario.wireless.loss_probability = 0.0;
    cfg.eem.check_interval = 200 * sim::kMillisecond;
    cfg.eem.update_interval = sim::kSecond;
    // Start with no filters loaded: the session loads what it needs.
    cfg.load_filters = {"none"};
    system_ = std::make_unique<core::CommaSystem>(cfg);
    shell_ = system_->MakeKati([this](const std::string& text) { output_ += text; });
  }

  // Executes and runs the simulator until the response lands.
  std::string Run(const std::string& command) {
    output_.clear();
    const uint64_t before = shell_->responses_received();
    shell_->Execute(command);
    for (int step = 0; step < 100 && shell_->responses_received() == before; ++step) {
      system_->sim().RunFor(100 * sim::kMillisecond);
    }
    EXPECT_GT(shell_->responses_received(), before) << "no response to: " << command;
    return output_;
  }

  std::unique_ptr<core::CommaSystem> system_;
  std::unique_ptr<Shell> shell_;
  std::string output_;
};

TEST_F(KatiTest, LoadPrintsRegisteredName) {
  EXPECT_EQ(Run("load librdrop.so"), "rdrop\n");
}

TEST_F(KatiTest, HelpIsLocal) {
  std::string help = Run("help");
  EXPECT_NE(help.find("report"), std::string::npos);
  EXPECT_NE(help.find("watch"), std::string::npos);
}

TEST_F(KatiTest, UnknownCommandDiagnosed) {
  EXPECT_NE(Run("frobnicate").find("unknown command"), std::string::npos);
}

// The full Fig. 5.3 session, over the wire this time.
TEST_F(KatiTest, InterfaceExampleSession) {
  EXPECT_EQ(Run("load tcp"), "tcp\n");
  EXPECT_EQ(Run("load launcher"), "launcher\n");
  EXPECT_EQ(Run("load wsize"), "wsize\n");
  EXPECT_EQ(Run("load rdrop"), "rdrop\n");
  EXPECT_EQ(Run("add launcher 11.11.10.10 0 0.0.0.0 0 tcp wsize"), "");
  EXPECT_EQ(Run("add tcp 11.11.10.99 7 11.11.10.10 1169"), "");
  EXPECT_EQ(Run("add wsize 11.11.10.99 7 11.11.10.10 1169"), "");

  std::string report = Run("report");
  EXPECT_NE(report.find("tcp\n\t11.11.10.99 7 -> 11.11.10.10 1169"), std::string::npos);
  EXPECT_NE(report.find("launcher\n\t11.11.10.10 0 -> 0.0.0.0 0"), std::string::npos);

  EXPECT_EQ(Run("add rdrop 11.11.10.99 7 11.11.10.10 1169 50"), "");
  EXPECT_EQ(Run("delete wsize 11.11.10.99 7 11.11.10.10 1169"), "");
  report = Run("report");
  EXPECT_NE(report.find("rdrop\n\t11.11.10.99 7 -> 11.11.10.10 1169"), std::string::npos);
  EXPECT_EQ(report.find("wsize\n\t11.11.10.99"), std::string::npos);
}

TEST_F(KatiTest, ThirdPartyControlAffectsRunningTraffic) {
  // The headline capability: a user at the shell adds a transparent service
  // to someone else's stream, with no application involvement (Ch. 7).
  Run("load tcp");
  Run("load launcher");
  Run("load rdrop");
  // Block everything toward mobile port 9000 before the stream starts.
  Run("add rdrop 0.0.0.0 0 11.11.10.10 9000 100");
  apps::BulkSink sink(&system_->scenario().mobile_host(), 9000);
  apps::BulkSender sender(&system_->scenario().wired_host(), system_->scenario().mobile_addr(),
                          9000, apps::PatternPayload(5000));
  system_->sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 0u);
  // Now remove the service from the shell: traffic flows.
  Run("delete rdrop 0.0.0.0 0 11.11.10.10 9000");
  system_->sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 5000u);
}

TEST_F(KatiTest, StreamsShowsAccounting) {
  Run("load tcp");
  apps::BulkSink sink(&system_->scenario().mobile_host(), 9001);
  apps::BulkSender sender(&system_->scenario().wired_host(), system_->scenario().mobile_addr(),
                          9001, apps::PatternPayload(3000));
  system_->sim().RunFor(5 * sim::kSecond);
  std::string streams = Run("streams");
  EXPECT_NE(streams.find("11.11.10.10 9001"), std::string::npos);
  EXPECT_NE(streams.find("packets="), std::string::npos);
}

TEST_F(KatiTest, PollFetchesRemoteVariable) {
  std::string out = Run("poll sysName");
  EXPECT_NE(out.find("sysName"), std::string::npos);
  EXPECT_NE(out.find("gateway"), std::string::npos);
}

TEST_F(KatiTest, WatchAndVarsShowPda) {
  Run("watch sysUpTime");
  system_->sim().RunFor(3 * sim::kSecond);
  std::string vars = Run("vars");
  EXPECT_NE(vars.find("sysUpTime"), std::string::npos);
  EXPECT_EQ(vars.find("(no data)"), std::string::npos);
  Run("unwatch sysUpTime");
  std::string empty = Run("vars");
  EXPECT_NE(empty.find("nothing watched"), std::string::npos);
}

TEST_F(KatiTest, NetloadRendersRates) {
  std::string out = Run("netload");
  EXPECT_NE(out.find("netload"), std::string::npos);
  EXPECT_NE(out.find("ethInAvg"), std::string::npos);
  EXPECT_NE(out.find("ethOutAvg"), std::string::npos);
}

}  // namespace
}  // namespace comma::kati

// Application partitioning at the proxy (thesis Ch. 1): the qcache filter
// answers repeated queries locally, including during a wired-side outage.
#include "src/filters/qcache_filter.h"

#include <gtest/gtest.h>

#include "src/apps/query.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class QcacheTest : public ProxyFixture {
 protected:
  QcacheTest() {
    server_ = std::make_unique<apps::QueryServer>(&scenario().wired_host());
    client_ = std::make_unique<apps::QueryClient>(&scenario().mobile_host(),
                                                  scenario().wired_addr());
    // Requests travel mobile -> wired server on the query port.
    StreamKey requests{scenario().mobile_addr(), 0, scenario().wired_addr(), kQueryPort};
    MustAdd("qcache", requests);
    qcache_ = dynamic_cast<QcacheFilter*>(sp().FindFilterOnKey(requests, "qcache"));
    EXPECT_TRUE(qcache_ != nullptr);
  }

  // Issues a query and runs until it resolves; returns (ok, value).
  std::pair<bool, util::Bytes> Ask(const std::string& key) {
    std::optional<std::pair<bool, util::Bytes>> result;
    client_->Query(key, [&](bool ok, const util::Bytes& value) {
      result = {ok, value};
    });
    for (int step = 0; step < 200 && !result.has_value(); ++step) {
      sim().RunFor(100 * sim::kMillisecond);
    }
    EXPECT_TRUE(result.has_value());
    return result.value_or(std::make_pair(false, util::Bytes{}));
  }

  std::unique_ptr<apps::QueryServer> server_;
  std::unique_ptr<apps::QueryClient> client_;
  QcacheFilter* qcache_ = nullptr;
};

TEST_F(QcacheTest, FirstQueryGoesUpstreamSecondIsServedLocally) {
  auto [ok1, value1] = Ask("alpha");
  ASSERT_TRUE(ok1);
  EXPECT_EQ(value1, apps::QueryServer::ValueFor("alpha"));
  EXPECT_EQ(server_->queries_answered(), 1u);
  EXPECT_EQ(qcache_->stats().misses, 1u);

  auto [ok2, value2] = Ask("alpha");
  ASSERT_TRUE(ok2);
  EXPECT_EQ(value2, value1);
  EXPECT_EQ(server_->queries_answered(), 1u);  // Never reached the server.
  EXPECT_EQ(qcache_->stats().hits, 1u);
}

TEST_F(QcacheTest, CachedAnswersSurviveWiredDisconnection) {
  // The Ch. 1 claim: "processing can continue if the mobile becomes
  // disconnected" — here the *wired* side vanishes and the proxy-resident
  // half of the application keeps answering known queries.
  ASSERT_TRUE(Ask("beta").first);
  ASSERT_TRUE(Ask("gamma").first);
  scenario().wired_link().SetUp(false);

  auto [ok, value] = Ask("beta");
  EXPECT_TRUE(ok);
  EXPECT_EQ(value, apps::QueryServer::ValueFor("beta"));

  // Unknown keys genuinely need the server and fail during the outage.
  auto [ok2, v2] = Ask("delta");
  EXPECT_FALSE(ok2);
  EXPECT_GT(client_->failures(), 0u);

  // After reconnection, unknown keys resolve again.
  scenario().wired_link().SetUp(true);
  auto [ok3, v3] = Ask("delta");
  EXPECT_TRUE(ok3);
  EXPECT_EQ(v3, apps::QueryServer::ValueFor("delta"));
}

TEST_F(QcacheTest, CacheHitsAreFasterThanUpstreamQueries) {
  Ask("hot");
  const double miss_ms = client_->latencies_ms().Percentile(100);
  apps::QueryClient fresh(&scenario().mobile_host(), scenario().wired_addr());
  std::optional<bool> done;
  fresh.Query("hot", [&](bool ok, const util::Bytes&) { done = ok; });
  for (int step = 0; step < 100 && !done.has_value(); ++step) {
    sim().RunFor(10 * sim::kMillisecond);
  }
  ASSERT_TRUE(done.value_or(false));
  // The hit skips the wired hop entirely.
  EXPECT_LT(fresh.latencies_ms().Percentile(100), miss_ms);
}

TEST_F(QcacheTest, CapacityBoundsEviction) {
  StreamKey requests{scenario().mobile_addr(), 0, scenario().wired_addr(),
                     static_cast<uint16_t>(kQueryPort + 1)};
  std::string error;
  ASSERT_TRUE(sp().AddService("qcache", requests, {"4"}, &error)) << error;
  auto* small = dynamic_cast<QcacheFilter*>(sp().FindFilterOnKey(requests, "qcache"));
  ASSERT_TRUE(small != nullptr);
  apps::QueryServer server2(&scenario().wired_host(), kQueryPort + 1);
  apps::QueryClient client2(&scenario().mobile_host(), scenario().wired_addr(),
                            kQueryPort + 1);
  for (int i = 0; i < 10; ++i) {
    std::optional<bool> done;
    client2.Query("key" + std::to_string(i), [&](bool ok, const util::Bytes&) { done = ok; });
    for (int step = 0; step < 100 && !done.has_value(); ++step) {
      sim().RunFor(50 * sim::kMillisecond);
    }
    ASSERT_TRUE(done.value_or(false)) << i;
  }
  EXPECT_LE(small->cache_size(), 4u);
}

TEST_F(QcacheTest, RejectsBadCapacityArgument) {
  std::string error;
  EXPECT_FALSE(sp().AddService("qcache", DataKey(1, 2), {"zero"}, &error));
  EXPECT_FALSE(sp().AddService("qcache", DataKey(1, 3), {"0"}, &error));
}

TEST_F(QcacheTest, ProtocolRoundTrips) {
  QueryRequest request{42, "the-key"};
  auto decoded_request = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded_request.has_value());
  EXPECT_EQ(decoded_request->id, 42u);
  EXPECT_EQ(decoded_request->key, "the-key");

  QueryResponse response{42, "the-key", util::Bytes{1, 2, 3}};
  auto decoded_response = DecodeQueryResponse(EncodeQueryResponse(response));
  ASSERT_TRUE(decoded_response.has_value());
  EXPECT_EQ(decoded_response->value, (util::Bytes{1, 2, 3}));

  EXPECT_FALSE(DecodeQueryRequest(EncodeQueryResponse(response)).has_value());
  EXPECT_FALSE(DecodeQueryResponse(util::Bytes{0x02, 0x00}).has_value());
  EXPECT_FALSE(DecodeQueryRequest({}).has_value());
}

}  // namespace
}  // namespace comma::filters

// Transparent packet dropping through the TTSF (thesis §8.1.5, Fig. 8.3) —
// experiment E14: the seq/ack remapping behaviours of Fig. 8.2.
#include "src/filters/ttsf_filter.h"

#include <gtest/gtest.h>

#include "src/filters/transform_filters.h"
#include "src/util/strings.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class TtsfTest : public ProxyFixture {
 protected:
  // Installs tcp + ttsf + tdrop(<percent>) on all streams toward `port`.
  void InstallTransparentDrop(uint16_t port, int percent, uint64_t seed = 7) {
    StreamKey key{net::Ipv4Address(), 0, scenario().mobile_addr(), port};
    MustAdd("launcher", key,
            {"tcp", "ttsf",
             util::Format("tdrop:%d:%llu", percent, static_cast<unsigned long long>(seed))});
  }

  TtsfFilter* FindTtsf(uint16_t client_port, uint16_t port) {
    return dynamic_cast<TtsfFilter*>(sp().FindFilterOnKey(
        StreamKey{scenario().wired_addr(), client_port, scenario().mobile_addr(), port}, "ttsf"));
  }
};

TEST_F(TtsfTest, ZeroRateDropIsFullyTransparent) {
  InstallTransparentDrop(80, 0);
  util::Bytes payload = Pattern(50'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received, payload);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
}

TEST_F(TtsfTest, TransparentDropDeliversSubsetWithoutStalling) {
  InstallTransparentDrop(80, 30);
  util::Bytes payload = Pattern(100'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);

  // The sender must believe everything was delivered: transfer completes,
  // both ends close cleanly, and (crucially) the sender never retransmits
  // the discarded data (§8.1.5: the lost data must not be retransmitted).
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->client->stats().bytes_sent, payload.size());

  // The mobile received a strict subset.
  EXPECT_LT(t->received.size(), payload.size());
  EXPECT_GT(t->received.size(), payload.size() / 4);

  // The received stream must be the original with some contiguous chunks
  // removed: greedily re-align each received run against the payload (the
  // pattern is high-entropy, so 32-byte probes are unambiguous).
  size_t pos = 0;
  size_t idx = 0;
  bool subsequence = true;
  while (idx < t->received.size()) {
    const size_t probe_len = std::min<size_t>(32, t->received.size() - idx);
    auto it = std::search(payload.begin() + static_cast<long>(pos), payload.end(),
                          t->received.begin() + static_cast<long>(idx),
                          t->received.begin() + static_cast<long>(idx + probe_len));
    if (it == payload.end()) {
      subsequence = false;
      break;
    }
    pos = static_cast<size_t>(it - payload.begin());
    while (idx < t->received.size() && pos < payload.size() &&
           payload[pos] == t->received[idx]) {
      ++pos;
      ++idx;
    }
  }
  EXPECT_TRUE(subsequence) << "received data is not an ordered subset of the payload";
}

TEST_F(TtsfTest, FullDropStillCompletesTransfer) {
  // Every data segment removed: the mobile sees only SYN/FIN; the sender
  // still finishes. This is the extreme of the §8.1.5 example.
  InstallTransparentDrop(80, 100);
  util::Bytes payload = Pattern(20'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->received.size(), 0u);
  EXPECT_EQ(t->client->stats().bytes_sent, payload.size());
}

TEST_F(TtsfTest, SenderNeverStallsOnDroppedTail) {
  // Send in bursts with idle gaps so drops regularly sit at the stream tail;
  // the TTSF's injected acks must keep the sender from RTO-stalling forever.
  InstallTransparentDrop(80, 50, /*seed=*/11);
  util::Bytes received;
  scenario().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) {
      received.insert(received.end(), d.begin(), d.end());
    });
    c->set_on_remote_close([c] { c->Close(); });
  });

  tcp::TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  // Ten bursts of 3 KB, one second apart.
  for (int burst = 0; burst < 10; ++burst) {
    sim().Schedule((burst + 1) * sim::kSecond, [client] {
      util::Bytes chunk(3000, static_cast<uint8_t>(0x40));
      client->Send(chunk);
    });
  }
  sim().Schedule(12 * sim::kSecond, [client] { client->Close(); });
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(client->state(), tcp::TcpState::kClosed);
  EXPECT_EQ(client->stats().bytes_sent, 30'000u);
  // The tail-drop acks keep RTO pressure minimal.
  EXPECT_LE(client->stats().retransmit_timeouts, 3u);

  uint16_t port = client->local_port();
  TtsfFilter* ttsf = FindTtsf(port, 80);
  if (ttsf != nullptr) {
    EXPECT_GT(ttsf->stats().segments_dropped, 0u);
  }
}

TEST_F(TtsfTest, DropSurvivesWirelessLossRetransmissions) {
  // Combine transparent dropping with genuine wireless loss: retransmissions
  // must replay the *same* transform (§8.1.4), keeping the stream coherent.
  scenario().wireless_link().SetLossProbability(0.05);
  InstallTransparentDrop(80, 20, /*seed=*/3);
  util::Bytes payload = Pattern(60'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(300 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->client->stats().bytes_sent, payload.size());
  EXPECT_LT(t->received.size(), payload.size());
}

TEST_F(TtsfTest, BidirectionalTrafficOnlyTransformsAttachedDirection) {
  InstallTransparentDrop(80, 100);
  // Server echoes a fixed response after receiving the remote close.
  util::Bytes client_received;
  scenario().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* c) {
    c->set_on_remote_close([c] {
      util::Bytes reply = Pattern(5000);
      c->Send(reply);
      c->Close();
    });
  });
  tcp::TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_data([&](const util::Bytes& d) {
    client_received.insert(client_received.end(), d.begin(), d.end());
  });
  client->set_on_connected([client] {
    util::Bytes data(2000, 1);
    client->Send(data);
    client->Close();
  });
  sim().RunFor(60 * sim::kSecond);
  // The reverse direction (mobile -> wired) is untouched by tdrop.
  EXPECT_EQ(client_received.size(), 5000u);
}

TEST_F(TtsfTest, StatsAccountTransformsAndReplays) {
  InstallTransparentDrop(80, 40, /*seed=*/5);
  auto t = StartTransfer(80, Pattern(40'000));
  sim().RunFor(60 * sim::kSecond);
  ASSERT_TRUE(t->client_closed);
  // Find any ttsf attachment still alive, or rely on proxy stats: after
  // close the tcp filter removed the stream, so check the proxy counters.
  EXPECT_GT(sp().stats().packets_dropped, 0u);  // Zero-payload packets culled.
}

// Regression: the ack-tracking state must initialize from the first ack
// seen, not seq-max against zero — with an initial sequence number in the
// upper half of sequence space the old code wedged max_acked_out at 0 and
// injected over-acking ACKs (data lost in the wireless queue became
// unrecoverable). Sweep seeds so both ISS halves are exercised.
class TtsfSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TtsfSeedSweep, DropNeverWedgesRegardlessOfIss) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  cfg.seed = GetParam();
  core::WirelessScenario s(cfg);
  proxy::ServiceProxy sp(&s.gateway(), StandardRegistry());
  std::string error;
  StreamKey key{net::Ipv4Address(), 0, s.mobile_addr(), 80};
  ASSERT_TRUE(sp.AddService("launcher", key, {"tcp", "ttsf", "tdrop:30:9"}, &error)) << error;

  util::Bytes received;
  bool server_closed = false;
  s.mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* c) {
    c->set_on_data(
        [&](const util::Bytes& d) { received.insert(received.end(), d.begin(), d.end()); });
    c->set_on_remote_close([c] { c->Close(); });
    c->set_on_closed([&] { server_closed = true; });
  });
  tcp::TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(util::Bytes(100'000, 0x2a));
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  s.sim().RunFor(120 * sim::kSecond);
  EXPECT_TRUE(server_closed) << "seed " << GetParam() << " wedged";
  EXPECT_EQ(client->stats().bytes_sent, 100'000u);
  // Transparent drops are never retransmitted end-to-end on a clean link.
  EXPECT_LE(client->stats().retransmit_timeouts, 2u);
}

INSTANTIATE_TEST_SUITE_P(IssSweep, TtsfSeedSweep,
                         ::testing::Values(4010, 4030, 4050, 4080, 77, 5150, 999983));

TEST_F(TtsfTest, RequiresConcreteKey) {
  std::string error;
  EXPECT_FALSE(sp().AddService(
      "ttsf", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 0}, {}, &error));
  EXPECT_NE(error.find("concrete"), std::string::npos);
}

TEST_F(TtsfTest, TransformersRequireTtsf) {
  std::string error;
  EXPECT_FALSE(sp().AddService("tdrop", DataKey(1, 2), {"50"}, &error));
  EXPECT_NE(error.find("ttsf"), std::string::npos);
}

}  // namespace
}  // namespace comma::filters

// White-box tests of the TTSF algorithm (Fig. 8.2): hand-crafted packets
// are fed straight into the proxy's tap so every remapping case is pinned
// down — in-order transforms, drops, retransmission replay (exact, widened,
// probe-sized), ack remapping across zero-length records, FIN accounting.
//
// A scripted transformer filter (registered into the pool by the test)
// decides per-segment what the TTSF should do.
#include "src/filters/ttsf_filter.h"

#include <gtest/gtest.h>

#include "src/filters/standard_set.h"
#include "src/proxy/service_proxy.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::StreamKey;

// Transform plan keyed by original sequence number.
struct Plan {
  enum class Action { kIdentity, kDrop, kReplace };
  std::map<uint32_t, std::pair<Action, util::Bytes>> by_seq;
};

class ScriptedTransformer : public proxy::Filter {
 public:
  explicit ScriptedTransformer(Plan* plan)
      : Filter("scripted", proxy::FilterPriority::kLow), plan_(plan) {}

  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const StreamKey& key,
                           net::Packet& packet) override {
    if (!packet.has_tcp() || packet.payload().empty()) {
      return proxy::FilterVerdict::kPass;
    }
    auto it = plan_->by_seq.find(packet.tcp().seq);
    if (it == plan_->by_seq.end()) {
      return proxy::FilterVerdict::kPass;
    }
    auto* ttsf = dynamic_cast<TtsfFilter*>(ctx.FindFilterOnKey(key, "ttsf"));
    if (ttsf == nullptr) {
      return proxy::FilterVerdict::kPass;
    }
    switch (it->second.first) {
      case Plan::Action::kIdentity:
        break;
      case Plan::Action::kDrop:
        ttsf->SubmitDrop(packet);
        break;
      case Plan::Action::kReplace:
        ttsf->SubmitTransform(packet, it->second.second);
        break;
    }
    return proxy::FilterVerdict::kPass;
  }

 private:
  Plan* plan_;
};

class TtsfUnitTest : public ::testing::Test {
 public:
  static constexpr uint32_t kIss = 5000;        // Client initial seq.
  static constexpr uint32_t kServerIss = 900;   // Server initial seq.

 protected:

  TtsfUnitTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    proxy::FilterRegistry registry = StandardRegistry();
    registry.Register("scripted", "test transformer",
                      [this] { return std::make_unique<ScriptedTransformer>(&plan_); });
    registry.Load("scripted");
    sp_ = std::make_unique<proxy::ServiceProxy>(&scenario_->gateway(), std::move(registry));

    key_ = StreamKey{scenario_->wired_addr(), 7, scenario_->mobile_addr(), 80};
    std::string error;
    EXPECT_TRUE(sp_->AddService("ttsf", key_, {}, &error)) << error;
    EXPECT_TRUE(sp_->AddService("scripted", key_, {}, &error)) << error;
    ttsf_ = dynamic_cast<TtsfFilter*>(sp_->FindFilterOnKey(key_, "ttsf"));
    EXPECT_TRUE(ttsf_ != nullptr);

    // Establish the mapping state with the SYN exchange.
    FeedForward(MakeSegment(kIss, {}, net::kTcpSyn));
    FeedReverse(MakeReverse(kServerIss, kIss + 1, net::kTcpSyn | net::kTcpAck));
  }

  net::PacketPtr MakeSegment(uint32_t seq, util::Bytes payload, uint8_t flags = net::kTcpAck,
                             uint32_t ack = kServerIss + 1) {
    net::TcpHeader h;
    h.src_port = 7;
    h.dst_port = 80;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    h.window = 8192;
    return net::Packet::MakeTcp(scenario_->wired_addr(), scenario_->mobile_addr(), h,
                                std::move(payload));
  }

  net::PacketPtr MakeReverse(uint32_t seq, uint32_t ack, uint8_t flags = net::kTcpAck) {
    net::TcpHeader h;
    h.src_port = 80;
    h.dst_port = 7;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    h.window = 16384;
    return net::Packet::MakeTcp(scenario_->mobile_addr(), scenario_->wired_addr(), h, {});
  }

  // Feeds a packet through the proxy tap; returns {verdict==pass, packet}.
  std::pair<bool, net::PacketPtr> Feed(net::PacketPtr p) {
    net::TapContext ctx{&scenario_->gateway(), 0};
    const net::TapVerdict verdict = sp_->OnPacket(p, ctx);
    return {verdict == net::TapVerdict::kPass, std::move(p)};
  }
  std::pair<bool, net::PacketPtr> FeedForward(net::PacketPtr p) { return Feed(std::move(p)); }
  std::pair<bool, net::PacketPtr> FeedReverse(net::PacketPtr p) { return Feed(std::move(p)); }

  static util::Bytes Fill(size_t n, uint8_t value) { return util::Bytes(n, value); }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<proxy::ServiceProxy> sp_;
  Plan plan_;
  StreamKey key_;
  TtsfFilter* ttsf_ = nullptr;
};

constexpr uint32_t kData = TtsfUnitTest::kIss + 1;  // First data byte.

TEST_F(TtsfUnitTest, IdentitySegmentsKeepSeqNumbers) {
  auto [pass, p] = FeedForward(MakeSegment(kData, Fill(100, 1)));
  EXPECT_TRUE(pass);
  EXPECT_EQ(p->tcp().seq, kData);
  EXPECT_EQ(p->payload().size(), 100u);
}

TEST_F(TtsfUnitTest, ReplacementShrinksAndShiftsSubsequentSeqs) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  auto [pass1, p1] = FeedForward(MakeSegment(kData, Fill(100, 1)));
  ASSERT_TRUE(pass1);
  EXPECT_EQ(p1->tcp().seq, kData);
  EXPECT_EQ(p1->payload(), Fill(40, 9));
  // The next segment lands 60 bytes earlier in output space.
  auto [pass2, p2] = FeedForward(MakeSegment(kData + 100, Fill(50, 2)));
  ASSERT_TRUE(pass2);
  EXPECT_EQ(p2->tcp().seq, kData + 40);
  EXPECT_EQ(p2->payload(), Fill(50, 2));
}

TEST_F(TtsfUnitTest, DropRemovesPacketAndClosesSeqGap) {
  plan_.by_seq[kData] = {Plan::Action::kDrop, {}};
  auto [pass1, p1] = FeedForward(MakeSegment(kData, Fill(100, 1)));
  EXPECT_FALSE(pass1);  // Consumed: nothing to send.
  auto [pass2, p2] = FeedForward(MakeSegment(kData + 100, Fill(50, 2)));
  ASSERT_TRUE(pass2);
  EXPECT_EQ(p2->tcp().seq, kData);  // No gap in output space.
}

TEST_F(TtsfUnitTest, AckRemapsAcrossShrunkRecord) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  // The mobile acks the 40 output bytes; the sender must see 100 acked.
  auto [pass, ack] = FeedReverse(MakeReverse(kServerIss + 1, kData + 40));
  ASSERT_TRUE(pass);
  EXPECT_EQ(ack->tcp().ack, kData + 100);
}

TEST_F(TtsfUnitTest, PartialAckInsideRecordRoundsDown) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  // An ack covering half the transformed record must not over-acknowledge.
  auto [pass, ack] = FeedReverse(MakeReverse(kServerIss + 1, kData + 20));
  ASSERT_TRUE(pass);
  EXPECT_EQ(ack->tcp().ack, kData);
}

TEST_F(TtsfUnitTest, AckAtDropBoundaryCoversDroppedBytes) {
  plan_.by_seq[kData + 100] = {Plan::Action::kDrop, {}};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  FeedForward(MakeSegment(kData + 100, Fill(50, 2)));  // Dropped.
  FeedForward(MakeSegment(kData + 150, Fill(30, 3)));
  // Mobile acks through the third segment's output image: 100 + 0 + 30.
  auto [pass, ack] = FeedReverse(MakeReverse(kServerIss + 1, kData + 130));
  ASSERT_TRUE(pass);
  EXPECT_EQ(ack->tcp().ack, kData + 180);  // Includes the 50 dropped bytes.
}

TEST_F(TtsfUnitTest, ExactRetransmissionReplaysCachedTransform) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  plan_.by_seq.clear();  // The transformer stays silent on the retransmission.
  auto [pass, rtx] = FeedForward(MakeSegment(kData, Fill(100, 1)));
  ASSERT_TRUE(pass);
  EXPECT_EQ(rtx->tcp().seq, kData);
  EXPECT_EQ(rtx->payload(), Fill(40, 9));  // Same bytes as the first pass (§8.1.4).
  EXPECT_EQ(ttsf_->stats().retransmissions_replayed, 1u);
}

TEST_F(TtsfUnitTest, ProbeSizedRetransmissionWidensToFullRecord) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  plan_.by_seq.clear();
  // A 1-byte window probe inside the record: replay the whole record —
  // over-delivery is safe, slicing a transform is not.
  auto [pass, probe] = FeedForward(MakeSegment(kData, Fill(1, 1)));
  ASSERT_TRUE(pass);
  EXPECT_EQ(probe->tcp().seq, kData);
  EXPECT_EQ(probe->payload(), Fill(40, 9));
}

TEST_F(TtsfUnitTest, WidenedRetransmissionSpansMultipleRecords) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(10, 7)};
  plan_.by_seq[kData + 50] = {Plan::Action::kReplace, Fill(20, 8)};
  FeedForward(MakeSegment(kData, Fill(50, 1)));
  FeedForward(MakeSegment(kData + 50, Fill(50, 2)));
  plan_.by_seq.clear();
  // The sender coalesces both segments into one retransmission.
  auto [pass, rtx] = FeedForward(MakeSegment(kData, Fill(100, 1)));
  ASSERT_TRUE(pass);
  EXPECT_EQ(rtx->tcp().seq, kData);
  util::Bytes expected = Fill(10, 7);
  util::Bytes tail = Fill(20, 8);
  expected.insert(expected.end(), tail.begin(), tail.end());
  EXPECT_EQ(rtx->payload(), expected);
}

TEST_F(TtsfUnitTest, TailDropWithBoundaryAlreadyAckedInjectsImmediately) {
  // The receiver has acked everything when the tail segment gets dropped:
  // nothing later will carry the acknowledgement, so the TTSF manufactures
  // it at drop time (§8.1.5's non-stalling guarantee).
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  FeedReverse(MakeReverse(kServerIss + 1, kData + 100));  // All caught up.
  plan_.by_seq[kData + 100] = {Plan::Action::kDrop, {}};
  const uint64_t injected_before = ttsf_->stats().acks_injected;
  auto [pass, p] = FeedForward(MakeSegment(kData + 100, Fill(50, 2)));
  EXPECT_FALSE(pass);  // Nothing to deliver...
  EXPECT_GT(ttsf_->stats().acks_injected, injected_before);  // ...but acked.
}

TEST_F(TtsfUnitTest, RetransmissionOfAckedDropResolvesViaReAck) {
  // Variant: the drop happened before the receiver's ack caught up, the
  // receiver then acked past the drop boundary (pruning the records), and
  // the sender retransmits anyway. The retransmission maps harmlessly below
  // the receiver's window and the resulting duplicate-ack, remapped, covers
  // the dropped bytes — no stall either way.
  plan_.by_seq[kData + 100] = {Plan::Action::kDrop, {}};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  FeedForward(MakeSegment(kData + 100, Fill(50, 2)));  // Dropped (tail).
  FeedReverse(MakeReverse(kServerIss + 1, kData + 100));
  plan_.by_seq.clear();
  auto [pass, rtx] = FeedForward(MakeSegment(kData + 100, Fill(50, 2)));
  ASSERT_TRUE(pass);
  // Its image ends at or below the receiver's ack point: guaranteed stale.
  EXPECT_TRUE(tcp::SeqLeq(rtx->tcp().seq + static_cast<uint32_t>(rtx->payload().size()),
                          kData + 100));
  // The receiver's re-ack of its unchanged position maps past the drop.
  auto [pass2, ack] = FeedReverse(MakeReverse(kServerIss + 1, kData + 100));
  ASSERT_TRUE(pass2);
  EXPECT_EQ(ack->tcp().ack, kData + 150);
}

TEST_F(TtsfUnitTest, FinConsumesOneSequenceUnitAfterTransforms) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  auto [pass, fin] = FeedForward(MakeSegment(kData + 100, {}, net::kTcpFin | net::kTcpAck));
  ASSERT_TRUE(pass);
  EXPECT_EQ(fin->tcp().seq, kData + 40);  // FIN sits right after the image.
  // The ack of the FIN maps back: mobile acks out-FIN+1 = kData+41.
  auto [pass2, ack] = FeedReverse(MakeReverse(kServerIss + 1, kData + 41));
  ASSERT_TRUE(pass2);
  EXPECT_EQ(ack->tcp().ack, kData + 101);
}

TEST_F(TtsfUnitTest, PureAcksInDataDirectionShiftByFrontierOffset) {
  plan_.by_seq[kData] = {Plan::Action::kDrop, {}};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  // A pure ack from the wired side (no payload) travels in the data
  // direction; its seq is shifted into output space.
  auto [pass, p] = FeedForward(MakeSegment(kData + 100, {}));
  ASSERT_TRUE(pass);
  EXPECT_EQ(p->tcp().seq, kData);
}

TEST_F(TtsfUnitTest, ReverseDirectionDataIsIndependent) {
  plan_.by_seq[kData] = {Plan::Action::kDrop, {}};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  // Server-side data keeps its own (identity) sequence space.
  net::TcpHeader h;
  h.src_port = 80;
  h.dst_port = 7;
  h.seq = kServerIss + 1;
  h.ack = kData;  // In output space: nothing delivered yet beyond data start.
  h.flags = net::kTcpAck;
  h.window = 16384;
  auto p = net::Packet::MakeTcp(scenario_->mobile_addr(), scenario_->wired_addr(), h,
                                Fill(64, 5));
  auto [pass, out] = Feed(std::move(p));
  ASSERT_TRUE(pass);
  EXPECT_EQ(out->tcp().seq, kServerIss + 1);
  EXPECT_EQ(out->payload(), Fill(64, 5));
}

TEST_F(TtsfUnitTest, StatsTrackBytesInAndOut) {
  plan_.by_seq[kData] = {Plan::Action::kReplace, Fill(40, 9)};
  plan_.by_seq[kData + 100] = {Plan::Action::kDrop, {}};
  FeedForward(MakeSegment(kData, Fill(100, 1)));
  FeedForward(MakeSegment(kData + 100, Fill(50, 2)));
  FeedForward(MakeSegment(kData + 150, Fill(30, 3)));
  EXPECT_EQ(ttsf_->stats().bytes_in, 180u);
  EXPECT_EQ(ttsf_->stats().bytes_out, 70u);
  EXPECT_EQ(ttsf_->stats().segments_transformed, 2u);
  EXPECT_EQ(ttsf_->stats().segments_dropped, 1u);
}

}  // namespace
}  // namespace comma::filters

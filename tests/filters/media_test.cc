// Data-manipulation filters for media streams (thesis §8.3) plus the delay
// and meter utilities.
#include "src/filters/media_filters.h"

#include <gtest/gtest.h>

#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class MediaTest : public ProxyFixture {
 protected:
  // Sends `count` layered media datagrams from the wired host to the mobile
  // on port 5004. Layer cycles 0,1,2; returns the receive log of layers.
  std::shared_ptr<std::vector<uint8_t>> StartLayeredStream(int count,
                                                           uint8_t type = kMediaTypeMonoImage,
                                                           size_t body = 300) {
    auto received = std::make_shared<std::vector<uint8_t>>();
    rx_socket_ = scenario().mobile_host().udp().Bind(5004);
    rx_socket_->set_on_receive([received](const util::Bytes& data, const udp::UdpEndpoint&) {
      if (!data.empty()) {
        received->push_back(data[0]);
      }
    });
    tx_socket_ = scenario().wired_host().udp().Bind(0);
    for (int i = 0; i < count; ++i) {
      sim().Schedule((i + 1) * 10 * sim::kMillisecond, [this, i, type, body] {
        util::Bytes payload;
        payload.push_back(static_cast<uint8_t>(i % 3));  // Layer.
        payload.push_back(type);
        payload.insert(payload.end(), body, static_cast<uint8_t>(i));
        tx_socket_->SendTo(scenario().mobile_addr(), 5004, std::move(payload));
      });
    }
    return received;
  }

  std::unique_ptr<udp::UdpSocket> rx_socket_;
  std::unique_ptr<udp::UdpSocket> tx_socket_;
};

TEST_F(MediaTest, HdiscardKeepsOnlyConfiguredLayers) {
  MustAdd("hdiscard", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, {"1"});
  auto layers = StartLayeredStream(30);
  sim().RunFor(5 * sim::kSecond);
  ASSERT_EQ(layers->size(), 20u);  // Layers 0 and 1 of every triple.
  for (uint8_t layer : *layers) {
    EXPECT_LE(layer, 1);
  }
}

TEST_F(MediaTest, HdiscardZeroKeepsBaseLayerOnly) {
  MustAdd("hdiscard", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, {"0"});
  auto layers = StartLayeredStream(30);
  sim().RunFor(5 * sim::kSecond);
  ASSERT_EQ(layers->size(), 10u);
  for (uint8_t layer : *layers) {
    EXPECT_EQ(layer, 0);
  }
}

TEST_F(MediaTest, HdiscardPassesEverythingAtFullQuality) {
  MustAdd("hdiscard", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, {"2"});
  auto layers = StartLayeredStream(30);
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(layers->size(), 30u);
}

TEST_F(MediaTest, HdiscardValidatesArgs) {
  std::string error;
  EXPECT_FALSE(sp().AddService(
      "hdiscard", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, {"16"},
      &error));
  EXPECT_FALSE(sp().AddService(
      "hdiscard", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004},
      {"auto", "2"}, &error));  // No EEM wired: refused.
  EXPECT_NE(error.find("EEM"), std::string::npos);
}

TEST_F(MediaTest, DtransConvertsColorToMono) {
  MustAdd("dtrans", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004});
  util::Bytes sizes;
  std::vector<util::Bytes> received;
  rx_socket_ = scenario().mobile_host().udp().Bind(5004);
  rx_socket_->set_on_receive([&](const util::Bytes& data, const udp::UdpEndpoint&) {
    received.push_back(data);
  });
  tx_socket_ = scenario().wired_host().udp().Bind(0);
  util::Bytes payload;
  payload.push_back(0);                       // Layer.
  payload.push_back(kMediaTypeColorImage);    // Type.
  payload.insert(payload.end(), 300, 0x5a);   // 100 RGB "pixels".
  tx_socket_->SendTo(scenario().mobile_addr(), 5004, payload);
  sim().RunFor(sim::kSecond);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0][1], kMediaTypeMonoImage);
  EXPECT_EQ(received[0].size(), kMediaHeaderSize + 100);  // One byte per pixel.
}

TEST_F(MediaTest, DtransStripsRichText) {
  MustAdd("dtrans", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004});
  std::vector<util::Bytes> received;
  rx_socket_ = scenario().mobile_host().udp().Bind(5004);
  rx_socket_->set_on_receive([&](const util::Bytes& data, const udp::UdpEndpoint&) {
    received.push_back(data);
  });
  tx_socket_ = scenario().wired_host().udp().Bind(0);
  util::Bytes payload = {0, kMediaTypeRichText, 'h', 0xc3, 'i', 0xff, '!'};
  tx_socket_->SendTo(scenario().mobile_addr(), 5004, payload);
  sim().RunFor(sim::kSecond);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], (util::Bytes{0, kMediaTypePlainText, 'h', 'i', '!'}));
}

TEST_F(MediaTest, DtransLeavesOtherTypesAlone) {
  MustAdd("dtrans", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004});
  auto layers = StartLayeredStream(5, kMediaTypeMonoImage);
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(layers->size(), 5u);
}

TEST_F(MediaTest, DelayFilterAddsLatency) {
  MustAdd("delay", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, {"100"});
  std::vector<sim::TimePoint> arrivals;
  rx_socket_ = scenario().mobile_host().udp().Bind(5004);
  rx_socket_->set_on_receive([&](const util::Bytes&, const udp::UdpEndpoint&) {
    arrivals.push_back(sim().Now());
  });
  tx_socket_ = scenario().wired_host().udp().Bind(0);
  const sim::TimePoint sent_at = sim().Now();
  tx_socket_->SendTo(scenario().mobile_addr(), 5004, util::Bytes{1, 2, 3});
  sim().RunFor(2 * sim::kSecond);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_GE(arrivals[0] - sent_at, 100 * sim::kMillisecond);
}

TEST_F(MediaTest, MeterCountsPerStream) {
  MustAdd("meter", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004});
  auto layers = StartLayeredStream(10);
  sim().RunFor(5 * sim::kSecond);
  ASSERT_EQ(layers->size(), 10u);
  auto* meter = dynamic_cast<MeterFilter*>(sp().FindFilterOnKey(
      StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 5004}, "meter"));
  ASSERT_TRUE(meter != nullptr);
  StreamKey concrete{scenario().wired_addr(), tx_socket_->port(), scenario().mobile_addr(), 5004};
  EXPECT_EQ(meter->packets(concrete), 10u);
  EXPECT_GT(meter->bytes(concrete), 10u * 300);
  EXPECT_NE(meter->Status().find("pkts=10"), std::string::npos);
}

}  // namespace
}  // namespace comma::filters

// The invariant auditors under real traffic: the ttsf_test drop/compress
// scenarios rerun with debug_checks enabled must never fire an invariant,
// and a deliberately corrupted offset map must fire SeqSpaceAuditor.
#include "src/filters/ttsf_audit.h"

#include <gtest/gtest.h>

#include "src/filters/transform_filters.h"
#include "src/filters/ttsf_filter.h"
#include "src/util/check.h"
#include "src/util/strings.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class TtsfAuditTest : public ProxyFixture {
 protected:
  TtsfAuditTest() {
    // Throw mode: a fired invariant surfaces as CheckFailure (propagating
    // out of sim().RunFor and failing the test) instead of aborting.
    util::SetCheckThrow(true);
    util::SetDebugChecks(true);
  }
  ~TtsfAuditTest() override {
    util::SetDebugChecks(false);
    util::SetCheckThrow(false);
  }

  void InstallTransparentDrop(uint16_t port, int percent, uint64_t seed = 7) {
    StreamKey key{net::Ipv4Address(), 0, scenario().mobile_addr(), port};
    MustAdd("launcher", key,
            {"tcp", "ttsf",
             util::Format("tdrop:%d:%llu", percent, static_cast<unsigned long long>(seed))});
  }

  void InstallTransparentCompress(uint16_t port) {
    StreamKey key{net::Ipv4Address(), 0, scenario().mobile_addr(), port};
    MustAdd("launcher", key, {"tcp", "ttsf", "tcompress:lz"});
  }

  TtsfFilter* FindTtsf(uint16_t client_port, uint16_t port) {
    return dynamic_cast<TtsfFilter*>(sp().FindFilterOnKey(
        StreamKey{scenario().wired_addr(), client_port, scenario().mobile_addr(), port}, "ttsf"));
  }
};

TEST_F(TtsfAuditTest, CleanDropScenarioFiresNoInvariant) {
  InstallTransparentDrop(80, 30);
  util::Bytes payload = Pattern(100'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);  // Throws CheckFailure on any violation.
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->client->stats().bytes_sent, payload.size());
  // The auditors actually ran.
  EXPECT_GT(sp().queue_auditor().audits(), 0u);
  EXPECT_GT(sp().registry_auditor().audits(), 0u);
  sp().AuditNow();
}

TEST_F(TtsfAuditTest, FullDropScenarioFiresNoInvariant) {
  InstallTransparentDrop(80, 100);
  auto t = StartTransfer(80, Pattern(20'000));
  sim().RunFor(120 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_EQ(t->received.size(), 0u);
}

TEST_F(TtsfAuditTest, CompressScenarioFiresNoInvariant) {
  InstallTransparentCompress(80);
  util::Bytes payload = TextPayload(60'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
}

TEST_F(TtsfAuditTest, LossyLinkReplayScenarioFiresNoInvariant) {
  scenario().wireless_link().SetLossProbability(0.05);
  InstallTransparentDrop(80, 20, /*seed=*/3);
  auto t = StartTransfer(80, Pattern(60'000));
  sim().RunFor(300 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
}

TEST_F(TtsfAuditTest, SeqSpaceAuditorCountsItsWork) {
  InstallTransparentDrop(80, 30);
  auto t = StartTransfer(80, Pattern(50'000));
  sim().RunFor(10 * sim::kSecond);  // Mid-transfer: records in flight.
  TtsfFilter* ttsf = FindTtsf(t->client->local_port(), 80);
  ASSERT_NE(ttsf, nullptr);
  EXPECT_GT(ttsf->auditor().audits(), 0u);
  EXPECT_GT(ttsf->auditor().records_checked(), 0u);
}

// White-box corruption harness: hand-fed packets with no receiver ACKs, so
// the offset-map records are deterministically retained (an acked record is
// pruned and could no longer be corrupted).
class TtsfAuditWhiteBoxTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kIss = 5000;
  static constexpr uint32_t kServerIss = 900;

  TtsfAuditWhiteBoxTest() {
    util::SetCheckThrow(true);
    util::SetDebugChecks(true);
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    sp_ = std::make_unique<proxy::ServiceProxy>(&scenario_->gateway(), StandardRegistry());
    key_ = StreamKey{scenario_->wired_addr(), 7, scenario_->mobile_addr(), 80};
    std::string error;
    EXPECT_TRUE(sp_->AddService("ttsf", key_, {}, &error)) << error;
    ttsf_ = dynamic_cast<TtsfFilter*>(sp_->FindFilterOnKey(key_, "ttsf"));
    EXPECT_NE(ttsf_, nullptr);
    // SYN exchange initializes both directions' frontiers.
    Feed(MakeSegment(kIss, {}, net::kTcpSyn));
  }

  ~TtsfAuditWhiteBoxTest() override {
    util::SetDebugChecks(false);
    util::SetCheckThrow(false);
  }

  net::PacketPtr MakeSegment(uint32_t seq, util::Bytes payload, uint8_t flags = net::kTcpAck,
                             uint32_t ack = kServerIss + 1) {
    net::TcpHeader h;
    h.src_port = 7;
    h.dst_port = 80;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    h.window = 8192;
    return net::Packet::MakeTcp(scenario_->wired_addr(), scenario_->mobile_addr(), h,
                                std::move(payload));
  }

  bool Feed(net::PacketPtr p) {
    net::TapContext ctx{&scenario_->gateway(), 0};
    return sp_->OnPacket(p, ctx) == net::TapVerdict::kPass;
  }

  // Creates retained records: one dropped segment (transform to zero bytes)
  // followed by one identity segment, no ACKs fed back.
  void BuildOffsetMap() {
    net::PacketPtr first = MakeSegment(kIss + 1, util::Bytes(100, 1));
    ttsf_->SubmitDrop(*first);
    Feed(std::move(first));
    Feed(MakeSegment(kIss + 101, util::Bytes(50, 2)));
  }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<proxy::ServiceProxy> sp_;
  StreamKey key_;
  TtsfFilter* ttsf_ = nullptr;
};

TEST_F(TtsfAuditWhiteBoxTest, CorruptedOffsetMapFiresSeqSpaceAuditor) {
  BuildOffsetMap();
  // Sanity: the uncorrupted map audits clean and was audited during Feed.
  ttsf_->AuditKey(key_);
  EXPECT_GT(ttsf_->auditor().audits(), 0u);

  ASSERT_TRUE(ttsf_->CorruptOffsetMapForTest(key_));
  EXPECT_THROW(ttsf_->AuditKey(key_), util::CheckFailure);
}

TEST_F(TtsfAuditWhiteBoxTest, CorruptionIsCaughtOnTheNextPacketTraversal) {
  BuildOffsetMap();
  ASSERT_TRUE(ttsf_->CorruptOffsetMapForTest(key_));
  // The very next segment through the tap hits the O(1) map health probe,
  // which catches the corruption before the map is consulted and degrades
  // the stream pair to bypass: the packet still passes (fail-open) instead
  // of the failure killing the proxy.
  EXPECT_TRUE(Feed(MakeSegment(kIss + 151, util::Bytes(10, 3))));
  EXPECT_TRUE(ttsf_->bypassed(key_));
  EXPECT_TRUE(ttsf_->bypassed(key_.Reversed()));
  EXPECT_EQ(ttsf_->stats().bypass_entries, 1u);
  // Degradation stayed inside the TTSF; the proxy saw nothing to quarantine.
  EXPECT_FALSE(sp_->IsQuarantined(ttsf_));
}

TEST_F(TtsfAuditTest, RegistrySweepPassesAcrossStreamChurn) {
  InstallTransparentDrop(80, 50, /*seed=*/11);
  for (int i = 0; i < 3; ++i) {
    auto t = StartTransfer(80, Pattern(10'000));
    sim().RunFor(60 * sim::kSecond);
    EXPECT_TRUE(t->client_closed);
    sp().AuditNow();
  }
}

}  // namespace
}  // namespace comma::filters

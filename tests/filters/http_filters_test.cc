// End-to-end suites for the application-layer service tier (ROADMAP item 5):
// the HTTP workload pair through the proxy, the hrewrite/htype content-aware
// filters riding the reassembler/TTSF protocol, and the dnscache UDP filter.
// Suites are named Http*/Dns* so the http CI job can select them
// (ctest -R '^Http|^Reassm|^Dns').
#include "src/filters/http_filters.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/apps/dns.h"
#include "src/apps/http.h"
#include "src/filters/dnscache_filter.h"
#include "src/filters/transform_filters.h"
#include "src/reassembly/http_parser.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

// --- HTTP workload + filters ------------------------------------------------

class HttpFilterTest : public ProxyFixture {
 protected:
  // Origin on the wired host, client on the mobile host; `services` are
  // installed on the connection's concrete key before any packet moves.
  void StartWorkload(std::vector<apps::HttpRequestSpec> requests,
                     const std::vector<std::pair<std::string, std::vector<std::string>>>& services) {
    server_ = std::make_unique<apps::HttpServer>(&scenario().wired_host(), 80);
    client_ = std::make_unique<apps::HttpClient>(&scenario().mobile_host(),
                                                 scenario().wired_addr(), 80,
                                                 std::move(requests));
    key_ = StreamKey{scenario().mobile_addr(), client_->connection()->local_port(),
                     scenario().wired_addr(), 80};
    for (const auto& [name, args] : services) {
      MustAdd(name, key_, args);
    }
  }

  bool RunUntilFinished(int seconds = 60) {
    for (int i = 0; i < seconds * 10 && !client_->finished(); ++i) {
      sim().RunFor(100 * sim::kMillisecond);
    }
    return client_->finished();
  }

  std::unique_ptr<apps::HttpServer> server_;
  std::unique_ptr<apps::HttpClient> client_;
  StreamKey key_;
};

TEST_F(HttpFilterTest, MixedWorkloadRoundTripsWithoutServices) {
  StartWorkload({{"GET", "/text/5000", {}},
                 {"GET", "/media/3/10/400", {}},
                 {"GET", "/image/3000", {}},
                 {"POST", "/upload", apps::PatternPayload(1500)},
                 {"GET", "/missing", {}}},
                {});
  ASSERT_TRUE(RunUntilFinished());
  EXPECT_FALSE(client_->failed());
  ASSERT_EQ(client_->responses_received(), 5u);
  EXPECT_EQ(client_->responses()[0].body, apps::TextPayload(5000));
  EXPECT_EQ(client_->responses()[2].body, apps::PatternPayload(3000));
  EXPECT_EQ(client_->responses()[4].status_code, 404);
  // Without transcoding every byte is useful except media frame headers:
  // 3 layers x 10 groups = 30 frames x 4 header bytes.
  EXPECT_EQ(client_->useful_bytes() + 30 * 4, client_->body_bytes());
  EXPECT_EQ(server_->requests_served(), 5u);
  EXPECT_EQ(server_->parse_failures(), 0u);
}

TEST_F(HttpFilterTest, HtypeCompressesTextAndClientRecoversOriginalBytes) {
  StartWorkload({{"GET", "/text/20000", {}}},
                {{"tcp", {}}, {"ttsf", {}}, {"htype", {"1"}}});
  ASSERT_TRUE(RunUntilFinished());
  ASSERT_FALSE(client_->failed());
  ASSERT_EQ(client_->responses_received(), 1u);
  const reassembly::HttpMessage& resp = client_->responses()[0];
  ASSERT_NE(resp.FindHeader(HtypeFilter::kEncodingHeader), nullptr);
  EXPECT_TRUE(resp.chunked);
  EXPECT_EQ(resp.FindHeader("Content-Length"), nullptr);
  auto decoded = DecodeCompressedFrames(resp.body, nullptr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, apps::TextPayload(20000));  // Bit-exact original.
  EXPECT_LT(resp.body.size(), 20000u / 2);        // And materially smaller.
  EXPECT_EQ(client_->useful_bytes(), 20000u);

  auto* htype = dynamic_cast<HtypeFilter*>(sp().FindFilterOnKey(key_, "htype"));
  ASSERT_NE(htype, nullptr);
  EXPECT_EQ(htype->responses_transcoded(), 1u);
  EXPECT_FALSE(htype->fail_open());
  EXPECT_EQ(sp().metrics().GetCounter("http.fail_open")->value(), 0u);
}

TEST_F(HttpFilterTest, HtypeDiscardsEnhancementLayers) {
  StartWorkload({{"GET", "/media/3/10/400", {}}},
                {{"tcp", {}}, {"ttsf", {}}, {"htype", {"0"}}});
  ASSERT_TRUE(RunUntilFinished());
  ASSERT_FALSE(client_->failed());
  ASSERT_EQ(client_->responses_received(), 1u);
  const reassembly::HttpMessage& resp = client_->responses()[0];
  // Only the 10 base-layer frames survive, intact.
  EXPECT_EQ(apps::MediaUsefulBytes(resp.body), 10u * 400u);
  EXPECT_EQ(apps::MediaUsefulBytes(resp.body, 0), 10u * 400u);
  auto* htype = dynamic_cast<HtypeFilter*>(sp().FindFilterOnKey(key_, "htype"));
  ASSERT_NE(htype, nullptr);
  EXPECT_EQ(htype->frames_dropped(), 20u);  // Layers 1 and 2 of 10 groups.
}

TEST_F(HttpFilterTest, HrewriteInjectsViaAndStripsHopByHopHeaders) {
  // Raw endpoints so the exact request bytes arriving at the origin are
  // observable.
  util::Bytes at_origin;
  scenario().wired_host().tcp().Listen(8080, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& data) {
      at_origin.insert(at_origin.end(), data.begin(), data.end());
    });
    conn->set_on_remote_close([conn] { conn->Close(); });
  });
  tcp::TcpConnection* raw =
      scenario().mobile_host().tcp().Connect(scenario().wired_addr(), 8080);
  const StreamKey key{scenario().mobile_addr(), raw->local_port(), scenario().wired_addr(),
                      8080};
  MustAdd("tcp", key);
  MustAdd("ttsf", key);
  MustAdd("hrewrite", key);
  const std::string request =
      "POST /submit HTTP/1.1\r\n"
      "Host: origin\r\n"
      "Proxy-Connection: keep-alive\r\n"
      "Connection: keep-alive\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  raw->set_on_connected([raw, request] {
    const util::Bytes wire = util::ToBytes(request);
    raw->Send(wire.data(), wire.size());
  });
  sim().RunFor(5 * sim::kSecond);

  const std::string got = util::ToString(at_origin);
  EXPECT_NE(got.find("Via: 1.1 comma-proxy\r\n"), std::string::npos) << got;
  EXPECT_NE(got.find("X-Forwarded-For: " + scenario().mobile_addr().ToString()),
            std::string::npos);
  EXPECT_EQ(got.find("Proxy-Connection"), std::string::npos);
  EXPECT_EQ(got.find("Connection:"), std::string::npos);
  EXPECT_NE(got.find("Content-Length: 5\r\n"), std::string::npos);  // Kept.
  EXPECT_NE(got.find("\r\n\r\nhello"), std::string::npos);          // Body intact.
  auto* hrewrite = dynamic_cast<HrewriteFilter*>(sp().FindFilterOnKey(key, "hrewrite"));
  ASSERT_NE(hrewrite, nullptr);
  EXPECT_EQ(hrewrite->requests_rewritten(), 1u);
  EXPECT_EQ(hrewrite->headers_stripped(), 2u);
}

TEST_F(HttpFilterTest, ChunkedTruncationAtLinkFlapFailsOpenWithoutStalling) {
  // The origin speaks chunked encoding itself (which htype refuses to
  // interpret) and dies mid-chunk while the wireless link flaps: the filter
  // must latch fail-open and let raw bytes through; the client's parser
  // sees a truncated chunked body, fails cleanly, and nothing deadlocks.
  tcp::TcpConnection* origin_conn = nullptr;
  scenario().wired_host().tcp().Listen(8081, [&](tcp::TcpConnection* conn) {
    origin_conn = conn;
    conn->set_on_data([conn](const util::Bytes&) {
      const std::string head =
          "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n2710\r\n";
      util::Bytes wire = util::ToBytes(head);
      const util::Bytes partial = apps::TextPayload(4000);  // Of 0x2710 = 10000.
      wire.insert(wire.end(), partial.begin(), partial.end());
      conn->Send(wire.data(), wire.size());
    });
  });

  util::Bytes at_client;
  bool closed = false;
  reassembly::HttpParser parser(reassembly::HttpParser::Mode::kResponse);
  tcp::TcpConnection* raw =
      scenario().mobile_host().tcp().Connect(scenario().wired_addr(), 8081);
  raw->set_on_data([&](const util::Bytes& data) {
    at_client.insert(at_client.end(), data.begin(), data.end());
    parser.Feed(data);
  });
  raw->set_on_remote_close([&] {
    parser.FinishStream();
    raw->Close();
  });
  raw->set_on_closed([&] { closed = true; });
  const StreamKey key{scenario().mobile_addr(), raw->local_port(), scenario().wired_addr(),
                      8081};
  MustAdd("tcp", key);
  MustAdd("ttsf", key);
  MustAdd("htype", key, {"1"});
  raw->set_on_connected([raw] {
    const util::Bytes req = util::ToBytes("GET /stream HTTP/1.1\r\n\r\n");
    raw->Send(req.data(), req.size());
  });

  sim().RunFor(2 * sim::kSecond);
  scenario().wireless_link().SetUp(false);  // The flap.
  sim().RunFor(1 * sim::kSecond);
  scenario().wireless_link().SetUp(true);
  sim().RunFor(2 * sim::kSecond);
  ASSERT_NE(origin_conn, nullptr);
  origin_conn->Close();  // Truncation: the chunk never completes.
  for (int i = 0; i < 600 && !closed; ++i) {
    sim().RunFor(100 * sim::kMillisecond);
  }

  EXPECT_TRUE(closed) << "teardown stalled";
  auto* htype = dynamic_cast<HtypeFilter*>(sp().FindFilterOnKey(key, "htype"));
  ASSERT_NE(htype, nullptr);
  EXPECT_TRUE(htype->fail_open());
  EXPECT_EQ(sp().metrics().GetCounter("http.fail_open")->value(), 1u);
  // Fail-open means raw pass-through: every origin byte reached the client.
  const std::string got = util::ToString(at_client);
  EXPECT_NE(got.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(at_client.size(), std::string("HTTP/1.1 200 OK\r\nTransfer-Encoding: "
                                          "chunked\r\n\r\n2710\r\n")
                                      .size() +
                                  4000u);
  // And the truncated chunked body is a clean parse failure, not a hang.
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(parser.HasMessage());
}

TEST_F(HttpFilterTest, CheckpointBlobsRoundTrip) {
  StartWorkload({{"GET", "/text/8000", {}}, {"GET", "/media/2/6/300", {}}},
                {{"tcp", {}}, {"ttsf", {}}, {"hrewrite", {}}, {"htype", {"0"}}});
  ASSERT_TRUE(RunUntilFinished());
  ASSERT_FALSE(client_->failed());

  auto* htype = dynamic_cast<HtypeFilter*>(sp().FindFilterOnKey(key_, "htype"));
  auto* hrewrite = dynamic_cast<HrewriteFilter*>(sp().FindFilterOnKey(key_, "hrewrite"));
  ASSERT_NE(htype, nullptr);
  ASSERT_NE(hrewrite, nullptr);
  EXPECT_EQ(htype->state_kind(), proxy::FilterStateKind::kCheckpointed);
  EXPECT_EQ(hrewrite->state_kind(), proxy::FilterStateKind::kCheckpointed);

  util::Bytes blob;
  ASSERT_TRUE(htype->ExportState(&blob));
  HtypeFilter fresh_htype;
  std::string error;
  ASSERT_TRUE(fresh_htype.ImportState(sp().context(), blob, &error)) << error;
  EXPECT_EQ(fresh_htype.max_layer(), htype->max_layer());
  EXPECT_EQ(fresh_htype.responses_transcoded(), htype->responses_transcoded());
  EXPECT_EQ(fresh_htype.frames_dropped(), htype->frames_dropped());
  EXPECT_EQ(fresh_htype.reassembler().frontier(), htype->reassembler().frontier());

  blob.clear();
  ASSERT_TRUE(hrewrite->ExportState(&blob));
  HrewriteFilter fresh_hrewrite;
  ASSERT_TRUE(fresh_hrewrite.ImportState(sp().context(), blob, &error)) << error;
  EXPECT_EQ(fresh_hrewrite.requests_rewritten(), hrewrite->requests_rewritten());
  EXPECT_EQ(fresh_hrewrite.reassembler().frontier(), hrewrite->reassembler().frontier());

  // Garbage is rejected, not half-imported.
  HtypeFilter victim;
  EXPECT_FALSE(victim.ImportState(sp().context(), util::Bytes{9, 9, 9}, &error));
}

// --- Pipelined responses under wireless loss --------------------------------

class HttpLossyTest : public ProxyFixture {
 protected:
  static core::ScenarioConfig LossyConfig() {
    core::ScenarioConfig cfg = CleanConfig();
    cfg.wireless.loss_probability = 0.03;
    cfg.seed = 77;
    return cfg;
  }
  HttpLossyTest() : ProxyFixture(LossyConfig()) {}
};

TEST_F(HttpLossyTest, InterleavedPipelinedResponsesSurviveLossAndReordering) {
  apps::HttpServer server(&scenario().wired_host(), 80);
  std::vector<apps::HttpRequestSpec> requests;
  for (int i = 0; i < 3; ++i) {
    requests.push_back({"GET", "/text/9000", {}});
    requests.push_back({"GET", "/media/3/8/350", {}});
    requests.push_back({"GET", "/image/4000", {}});
  }
  apps::HttpClient client(&scenario().mobile_host(), scenario().wired_addr(), 80, requests,
                          /*pipeline_depth=*/6);
  const StreamKey key{scenario().mobile_addr(), client.connection()->local_port(),
                      scenario().wired_addr(), 80};
  MustAdd("tcp", key);
  MustAdd("ttsf", key);
  MustAdd("hrewrite", key);
  MustAdd("htype", key, {"1"});

  for (int i = 0; i < 1200 && !client.finished(); ++i) {
    sim().RunFor(100 * sim::kMillisecond);
  }
  ASSERT_TRUE(client.finished());
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.responses_received(), requests.size());
  // Loss forced retransmissions and out-of-order arrival at the proxy, yet
  // message structure survived: every text body decodes bit-exact.
  for (const auto& resp : client.responses()) {
    if (resp.FindHeader(HtypeFilter::kEncodingHeader) != nullptr) {
      auto decoded = DecodeCompressedFrames(resp.body, nullptr);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, apps::TextPayload(9000));
    }
  }
  auto* htype = dynamic_cast<HtypeFilter*>(sp().FindFilterOnKey(key, "htype"));
  ASSERT_NE(htype, nullptr);
  EXPECT_FALSE(htype->fail_open());
  EXPECT_EQ(sp().metrics().GetCounter("http.fail_open")->value(), 0u);
  EXPECT_EQ(htype->responses_transcoded(), 6u);  // 3 text + 3 media.
}

// --- dnscache ----------------------------------------------------------------

class DnsCacheTest : public ProxyFixture {
 protected:
  // Resolver on the wired side; queries cross the proxy. `ttl` stamps the
  // resolver's answers.
  void Start(uint32_t ttl) {
    resolver_ = std::make_unique<apps::DnsServer>(&scenario().wired_host(), ttl);
    client_ = std::make_unique<apps::DnsClient>(&scenario().mobile_host(),
                                                scenario().wired_addr());
    key_ = StreamKey{scenario().mobile_addr(), 0, scenario().wired_addr(),
                     apps::DnsServer::kDnsPort};
    MustAdd("dnscache", key_);
    cache_ = dynamic_cast<DnscacheFilter*>(sp().FindFilterOnKey(key_, "dnscache"));
    ASSERT_NE(cache_, nullptr);
  }

  std::optional<reassembly::DnsMessage> Resolve(const std::string& name) {
    std::optional<reassembly::DnsMessage> result;
    client_->Resolve(name, [&](const reassembly::DnsMessage& m) { result = m; });
    for (int i = 0; i < 100 && !result.has_value(); ++i) {
      sim().RunFor(100 * sim::kMillisecond);
    }
    return result;
  }

  std::unique_ptr<apps::DnsServer> resolver_;
  std::unique_ptr<apps::DnsClient> client_;
  StreamKey key_;
  DnscacheFilter* cache_ = nullptr;
};

TEST_F(DnsCacheTest, SecondQueryIsAnsweredAtTheProxy) {
  Start(/*ttl=*/300);
  auto first = Resolve("host.example");
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->answers.size(), 1u);
  EXPECT_EQ(resolver_->queries_answered(), 1u);
  EXPECT_EQ(cache_->stats().misses, 1u);

  auto second = Resolve("host.example");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(resolver_->queries_answered(), 1u);  // Never left the gateway.
  EXPECT_EQ(cache_->stats().hits, 1u);
  EXPECT_EQ(second->answers[0].rdata, first->answers[0].rdata);
  // The forged answer is the deterministic resolver answer.
  const uint32_t addr = apps::DnsAddressFor("host.example").value();
  EXPECT_EQ(second->answers[0].rdata,
            (util::Bytes{static_cast<uint8_t>(addr >> 24), static_cast<uint8_t>(addr >> 16),
                         static_cast<uint8_t>(addr >> 8), static_cast<uint8_t>(addr)}));
  EXPECT_EQ(sp().metrics().GetCounter("dns.cache_hits")->value(), 1u);
}

TEST_F(DnsCacheTest, ExpiredEntriesGoUpstreamAgain) {
  Start(/*ttl=*/2);
  ASSERT_TRUE(Resolve("ttl.example").has_value());
  sim().RunFor(3 * sim::kSecond);  // Past the 2 s TTL.
  ASSERT_TRUE(Resolve("ttl.example").has_value());
  EXPECT_EQ(resolver_->queries_answered(), 2u);
  EXPECT_EQ(cache_->stats().hits, 0u);
}

TEST_F(DnsCacheTest, ZeroTtlAnswersAreNotCached) {
  Start(/*ttl=*/0);
  ASSERT_TRUE(Resolve("zero.example").has_value());
  ASSERT_TRUE(Resolve("zero.example").has_value());
  EXPECT_EQ(resolver_->queries_answered(), 2u);
  EXPECT_EQ(cache_->stats().responses_cached, 0u);
}

TEST_F(DnsCacheTest, CheckpointRoundTripCarriesTheCache) {
  Start(/*ttl=*/300);
  ASSERT_TRUE(Resolve("a.example").has_value());
  ASSERT_TRUE(Resolve("b.example").has_value());
  util::Bytes blob;
  ASSERT_TRUE(cache_->ExportState(&blob));

  DnscacheFilter standby;
  std::string error;
  ASSERT_TRUE(standby.ImportState(sp().context(), blob, &error)) << error;
  EXPECT_EQ(standby.Status(), cache_->Status());
  EXPECT_FALSE(standby.ImportState(sp().context(), util::Bytes{1, 2}, &error));
}

}  // namespace
}  // namespace comma::filters

// The snoop protocol-tuning service (thesis §8.2.1) — experiment E5 support.
#include "src/filters/snoop_filter.h"

#include <gtest/gtest.h>

#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class SnoopTest : public ProxyFixture {
 protected:
  void InstallSnoop(uint16_t port) {
    StreamKey key{net::Ipv4Address(), 0, scenario().mobile_addr(), port};
    MustAdd("launcher", key, {"tcp", "snoop"});
  }

  SnoopFilter* FindSnoop(uint16_t client_port, uint16_t port) {
    return dynamic_cast<SnoopFilter*>(sp().FindFilterOnKey(
        StreamKey{scenario().wired_addr(), client_port, scenario().mobile_addr(), port},
        "snoop"));
  }
};

TEST_F(SnoopTest, TransparentOnCleanLink) {
  InstallSnoop(80);
  util::Bytes payload = Pattern(50'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received, payload);
  EXPECT_TRUE(t->client_closed);
}

TEST_F(SnoopTest, LocalRetransmissionHidesWirelessLoss) {
  scenario().wireless_link().SetLossProbability(0.05);
  InstallSnoop(80);
  util::Bytes payload = Pattern(100'000);
  auto t = StartTransfer(80, payload);
  // Sample the snoop stats while the stream is alive (the tcp filter
  // removes the filters after close).
  uint64_t local = 0;
  uint64_t suppressed = 0;
  for (int step = 0; step < 3000 && !t->server_closed; ++step) {
    sim().RunFor(100 * sim::kMillisecond);
    SnoopFilter* snoop = FindSnoop(t->client->local_port(), 80);
    if (snoop != nullptr) {
      local = std::max(local,
                       snoop->stats().local_retransmits + snoop->stats().timer_retransmits);
      suppressed = std::max(suppressed, snoop->stats().dupacks_suppressed);
    }
  }
  ASSERT_EQ(t->received, payload);
  // With 5% loss over 100 segments, snoop must have recovered locally.
  EXPECT_GT(local + suppressed, 0u);
  // The sender never saw enough dupacks to fast-retransmit: snoop suppressed
  // them (§8.2.1: suppresses duplicate acknowledgements).
  EXPECT_EQ(t->client->stats().fast_retransmits, 0u);
}

TEST_F(SnoopTest, SenderRetransmitsLessWithSnoop) {
  // Same loss pattern with and without snoop; compare end-to-end (sender)
  // retransmissions. Snoop absorbs recovery locally.
  uint64_t sender_retx[2] = {0, 0};
  for (int with_snoop = 0; with_snoop <= 1; ++with_snoop) {
    core::ScenarioConfig cfg = CleanConfig();
    cfg.wireless.loss_probability = 0.05;
    cfg.seed = 99;
    core::WirelessScenario s(cfg);
    proxy::ServiceProxy sp2(&s.gateway(), filters::StandardRegistry());
    if (with_snoop != 0) {
      std::string error;
      StreamKey key{net::Ipv4Address(), 0, s.mobile_addr(), 80};
      ASSERT_TRUE(sp2.AddService("launcher", key, {"tcp", "snoop"}, &error)) << error;
    }
    util::Bytes sink;
    s.mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* c) {
      c->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
    });
    tcp::TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
    auto remaining = std::make_shared<util::Bytes>(Pattern(100'000));
    auto pump = [client, remaining] {
      while (!remaining->empty()) {
        size_t n = client->Send(remaining->data(), remaining->size());
        if (n == 0) {
          return;
        }
        remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
      }
      client->Close();
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    s.sim().RunFor(300 * sim::kSecond);
    ASSERT_EQ(sink.size(), 100'000u);
    sender_retx[with_snoop] = client->stats().bytes_retransmitted;
  }
  EXPECT_LT(sender_retx[1], sender_retx[0]);
}

TEST_F(SnoopTest, CacheFlushesOnNewAcks) {
  InstallSnoop(80);
  auto t = StartTransfer(80, Pattern(50'000));
  sim().RunFor(60 * sim::kSecond);
  ASSERT_EQ(t->received.size(), 50'000u);
  SnoopFilter* snoop = FindSnoop(t->client->local_port(), 80);
  if (snoop != nullptr) {
    EXPECT_GT(snoop->stats().segments_cached, 40u);
  }
}

TEST_F(SnoopTest, RequiresConcreteKey) {
  std::string error;
  EXPECT_FALSE(sp().AddService(
      "snoop", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 0}, {}, &error));
  EXPECT_NE(error.find("concrete"), std::string::npos);
}

TEST_F(SnoopTest, CustomLocalRtoParses) {
  std::string error;
  EXPECT_TRUE(sp().AddService("snoop", DataKey(1, 2), {"100"}, &error)) << error;
  EXPECT_FALSE(sp().AddService("snoop", DataKey(1, 3), {"0"}, &error));
  EXPECT_FALSE(sp().AddService("snoop", DataKey(1, 4), {"fast"}, &error));
}

}  // namespace
}  // namespace comma::filters

// BSSP-style window-size services (thesis §8.2.2) — experiment E6 support.
#include "src/filters/wsize_filter.h"

#include <gtest/gtest.h>

#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

class WsizeTest : public ProxyFixture {
 protected:
  // The window fields that matter travel mobile -> wired (the ack path).
  StreamKey AckWildcard(uint16_t server_port) {
    return StreamKey{scenario().mobile_addr(), server_port, net::Ipv4Address(), 0};
  }
};

TEST_F(WsizeTest, ClampLimitsSenderWindow) {
  MustAdd("launcher", AckWildcard(80), {"tcp", "wsize:clamp:2048"});
  auto t = StartTransfer(80, Pattern(60'000));
  sim().RunFor(5 * sim::kSecond);
  // The sender's view of the peer window can never exceed the clamp.
  EXPECT_LE(t->client->peer_window(), 2048u);
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 60'000u);  // Slow but correct.
}

TEST_F(WsizeTest, ClampThrottlesThroughput) {
  // Two concurrent long-running streams; the low-priority one is clamped
  // hard, so it cannot keep more than one segment in flight.
  MustAdd("launcher", AckWildcard(81), {"tcp", "wsize:clamp:1000"});
  auto low = StartTransfer(81, Pattern(5'000'000));
  auto high = StartTransfer(82, Pattern(5'000'000));
  sim().RunFor(20 * sim::kSecond);
  ASSERT_LT(low->received.size(), 5'000'000u);   // Both still running:
  ASSERT_LT(high->received.size(), 5'000'000u);  // mid-flight comparison.
  // The unclamped (priority) stream moved far more data (§8.2.2: "allowing
  // priority streams more bandwidth and smaller delay").
  EXPECT_GT(high->received.size(), 2 * low->received.size());
}

TEST_F(WsizeTest, ZwsmStallsSenderDuringDisconnection) {
  MustAdd("launcher", AckWildcard(80), {"tcp", "wsize:zwsm"});
  auto t = StartTransfer(80, Pattern(500'000));
  sim().RunFor(3 * sim::kSecond);

  // Grab the filter instance and signal disconnection manually.
  StreamKey ack_key{scenario().mobile_addr(), 80, scenario().wired_addr(),
                    t->client->local_port()};
  auto* wsize = dynamic_cast<WsizeFilter*>(sp().FindFilterOnKey(ack_key, "wsize"));
  ASSERT_TRUE(wsize != nullptr);

  scenario().wireless_link().SetUp(false);
  wsize->NotifyLinkDown();
  sim().RunFor(30 * sim::kSecond);

  // The ZWSM put the sender into persist mode: stalled but alive.
  EXPECT_TRUE(t->client->InPersistMode());
  EXPECT_NE(t->client->state(), tcp::TcpState::kClosed);
  EXPECT_GT(t->client->stats().zero_window_acks_received, 0u);
  EXPECT_GT(wsize->zwsms_sent(), 0u);

  // Reconnect: the window-update restarts the stream promptly.
  scenario().wireless_link().SetUp(true);
  wsize->NotifyLinkUp();
  sim().RunFor(200 * sim::kMillisecond);
  EXPECT_FALSE(t->client->InPersistMode());
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 500'000u);
}

TEST_F(WsizeTest, ZwsmKeepsConnectionAliveIndefinitely) {
  // Without ZWSM a long outage aborts the connection after max retries;
  // with ZWSM it must survive arbitrarily long (thesis: "stay alive
  // indefinitely").
  MustAdd("launcher", AckWildcard(80), {"tcp", "wsize:zwsm"});
  tcp::TcpConfig cfg;
  cfg.max_data_retries = 6;
  auto t = StartTransfer(80, Pattern(2'000'000), cfg);
  sim().RunFor(2 * sim::kSecond);
  StreamKey ack_key{scenario().mobile_addr(), 80, scenario().wired_addr(),
                    t->client->local_port()};
  auto* wsize = dynamic_cast<WsizeFilter*>(sp().FindFilterOnKey(ack_key, "wsize"));
  ASSERT_TRUE(wsize != nullptr);
  scenario().wireless_link().SetUp(false);
  wsize->NotifyLinkDown();
  sim().RunFor(600 * sim::kSecond);  // Ten minutes of outage.
  EXPECT_NE(t->client->state(), tcp::TcpState::kClosed);
  scenario().wireless_link().SetUp(true);
  wsize->NotifyLinkUp();
  sim().RunFor(300 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 2'000'000u);
}

TEST_F(WsizeTest, WithoutZwsmLongOutageKillsConnection) {
  tcp::TcpConfig cfg;
  cfg.max_data_retries = 6;
  auto t = StartTransfer(80, Pattern(2'000'000), cfg);
  sim().RunFor(2 * sim::kSecond);
  scenario().wireless_link().SetUp(false);
  sim().RunFor(600 * sim::kSecond);
  EXPECT_EQ(t->client->state(), tcp::TcpState::kClosed);
}

TEST_F(WsizeTest, InsertionValidatesArguments) {
  std::string error;
  EXPECT_FALSE(sp().AddService("wsize", DataKey(1, 2), {"clamp"}, &error));
  EXPECT_FALSE(sp().AddService("wsize", DataKey(1, 3), {"clamp", "70000"}, &error));
  EXPECT_FALSE(sp().AddService("wsize", DataKey(1, 4), {"explode"}, &error));
  EXPECT_TRUE(sp().AddService("wsize", DataKey(1, 5), {"zwsm"}, &error)) << error;
  EXPECT_TRUE(sp().AddService("wsize", DataKey(1, 6), {}, &error)) << error;
}

}  // namespace
}  // namespace comma::filters

// Transparent compression (thesis §8.1.6, Fig. 8.4) in the double-proxy
// arrangement (§10.2.4): tcompress at the gateway, tdecompress at the
// mobile, with the TTSF keeping both TCP endpoints coherent.
#include <gtest/gtest.h>

#include "src/filters/transform_filters.h"
#include "src/filters/ttsf_filter.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::ServiceProxy;
using proxy::StreamKey;

class CompressionTest : public ProxyFixture {
 protected:
  CompressionTest() {
    mobile_sp_ =
        std::make_unique<ServiceProxy>(&scenario().mobile_host(), filters::StandardRegistry());
  }

  // Installs the compression service on both proxies for streams to `port`.
  void InstallCompression(uint16_t port, const std::string& codec = "lz") {
    StreamKey key{net::Ipv4Address(), 0, scenario().mobile_addr(), port};
    MustAdd("launcher", key, {"tcp", "ttsf", "tcompress:" + codec});
    std::string error;
    ASSERT_TRUE(mobile_sp_->AddService("launcher", key, {"tcp", "ttsf", "tdecompress"}, &error))
        << error;
  }

  std::unique_ptr<ServiceProxy> mobile_sp_;
};

TEST_F(CompressionTest, EndToEndBytesAreIdentical) {
  InstallCompression(80);
  util::Bytes payload = TextPayload(80'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(t->received.size(), payload.size());
  EXPECT_EQ(t->received, payload);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
}

TEST_F(CompressionTest, WirelessBytesShrink) {
  const uint64_t base_tx = scenario().wireless_link().stats(0).tx_bytes;
  InstallCompression(80);
  util::Bytes payload = TextPayload(100'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);
  ASSERT_EQ(t->received, payload);
  const uint64_t wireless_bytes = scenario().wireless_link().stats(0).tx_bytes - base_tx;
  // Repetitive text compresses well: well under half the original volume
  // crossed the wireless link.
  EXPECT_LT(wireless_bytes, payload.size() / 2);
}

TEST_F(CompressionTest, CompressionSpeedsUpSlowLink) {
  // Compare completion times with and without the service on a 200 kbit/s
  // link (thesis §1: "converting to a more compact data format can greatly
  // reduce the required bandwidth").
  auto run_transfer = [&](uint16_t port, bool compressed) -> sim::TimePoint {
    if (compressed) {
      InstallCompression(port);
    }
    util::Bytes payload = TextPayload(60'000);
    auto t = StartTransfer(port, payload);
    const sim::TimePoint start = sim().Now();
    for (int step = 0; step < 2000 && !t->server_closed; ++step) {
      sim().RunFor(100 * sim::kMillisecond);
    }
    EXPECT_EQ(t->received.size(), payload.size());
    return sim().Now() - start;
  };
  scenario().wireless_link().SetBandwidth(200'000);
  const sim::TimePoint plain = run_transfer(81, false);
  const sim::TimePoint squeezed = run_transfer(82, true);
  EXPECT_LT(squeezed, plain * 3 / 4);
}

TEST_F(CompressionTest, RandomDataPassesThroughUncompressed) {
  InstallCompression(80);
  util::Bytes payload = Pattern(30'000);  // High-entropy pattern.
  auto t = StartTransfer(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received, payload);
}

TEST_F(CompressionTest, SurvivesWirelessLoss) {
  scenario().wireless_link().SetLossProbability(0.05);
  InstallCompression(80);
  util::Bytes payload = TextPayload(50'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(300 * sim::kSecond);
  EXPECT_EQ(t->received, payload);
  EXPECT_TRUE(t->client_closed);
}

TEST_F(CompressionTest, RleCodecWorksEndToEnd) {
  InstallCompression(80, "rle");
  util::Bytes payload(40'000, 0x61);  // Runs compress superbly under RLE.
  auto t = StartTransfer(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received, payload);
}

TEST_F(CompressionTest, FrameCodecHandlesConcatenatedBlobs) {
  util::Bytes a = util::Compress(TextPayload(500), util::Codec::kLz);
  util::Bytes b = util::Compress(util::Bytes(300, 0x7), util::Codec::kRle);
  util::Bytes wire = FrameCompressedBlob(a);
  util::Bytes second = FrameCompressedBlob(b);
  wire.insert(wire.end(), second.begin(), second.end());
  uint64_t blobs = 0;
  auto plain = DecodeCompressedFrames(wire, &blobs);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(blobs, 2u);
  util::Bytes expected = TextPayload(500);
  util::Bytes tail(300, 0x7);
  expected.insert(expected.end(), tail.begin(), tail.end());
  EXPECT_EQ(*plain, expected);
}

TEST_F(CompressionTest, FrameCodecRejectsCorruption) {
  util::Bytes wire = FrameCompressedBlob(util::Compress(TextPayload(500), util::Codec::kLz));
  wire[10] ^= 0xff;
  EXPECT_FALSE(DecodeCompressedFrames(wire, nullptr).has_value());
  // Truncation.
  wire = FrameCompressedBlob(util::Compress(TextPayload(500), util::Codec::kLz));
  wire.resize(wire.size() - 5);
  EXPECT_FALSE(DecodeCompressedFrames(wire, nullptr).has_value());
}

}  // namespace
}  // namespace comma::filters

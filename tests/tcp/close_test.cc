#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

class CloseTest : public TcpFixture {
 public:
  CloseTest() : TcpFixture(CleanConfig()) {}
  static core::ScenarioConfig CleanConfig() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }
};

TEST_F(CloseTest, GracefulCloseBothSides) {
  TcpConnection* server = nullptr;
  util::Bytes sink;
  StartSinkServer(80, &sink, &server);  // Sink server closes on remote close.
  bool client_closed = false;
  TcpConnection* client = StartBulkClient(80, Pattern(5000));
  client->set_on_closed([&] { client_closed = true; });
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink.size(), 5000u);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(CloseTest, CloseFlushesPendingData) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  // Send and close immediately; every byte must still arrive before the FIN.
  util::Bytes payload = Pattern(40'000);
  StartBulkClient(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

TEST_F(CloseTest, RemoteCloseNotifies) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  bool remote_closed = false;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_remote_close([&] { remote_closed = true; });
  sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  server->Close();
  sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(remote_closed);
  EXPECT_EQ(client->state(), TcpState::kCloseWait);
  client->Close();
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST_F(CloseTest, HalfCloseAllowsContinuedReceive) {
  // Client closes its direction; server keeps sending.
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  util::Bytes client_sink;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_data([&](const util::Bytes& d) {
    client_sink.insert(client_sink.end(), d.begin(), d.end());
  });
  sim().RunFor(2 * sim::kSecond);
  client->Close();  // FIN_WAIT_*.
  sim().RunFor(sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  util::Bytes late = Pattern(3000);
  server->Send(late);
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(client_sink, late);
  server->Close();
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(CloseTest, StatesTraverseFinHandshake) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  client->Close();
  // Immediately after Close() with an empty buffer, the FIN is out.
  EXPECT_EQ(client->state(), TcpState::kFinWait1);
  sim().RunFor(sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kFinWait2);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->state(), TcpState::kCloseWait);
  server->Close();
  sim().RunFor(500 * sim::kMillisecond);
  EXPECT_EQ(client->state(), TcpState::kTimeWait);
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(CloseTest, AbortSendsResetToPeer) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  std::string server_error;
  server->set_on_error([&](const std::string& e) { server_error = e; });
  client->Abort();
  sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
  EXPECT_NE(server_error.find("reset"), std::string::npos);
}

TEST_F(CloseTest, FinRetransmittedThroughLoss) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  // Lose the first FIN.
  scenario().wireless_link().SetLossProbability(1.0);
  client->Close();
  sim().RunFor(2 * sim::kSecond);
  scenario().wireless_link().SetLossProbability(0.0);
  sim().RunFor(60 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->state(), TcpState::kCloseWait);
  EXPECT_GT(client->stats().retransmit_timeouts, 0u);
}

TEST_F(CloseTest, CloseBeforeEstablishmentClosesQuietly) {
  scenario().mobile_host().tcp().Listen(80, [](TcpConnection*) {});
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->Close();
  EXPECT_EQ(client->state(), TcpState::kClosed);
  sim().RunFor(5 * sim::kSecond);
}

TEST_F(CloseTest, SendAfterCloseRefused) {
  StartSinkServer(80, nullptr);
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  client->Close();
  util::Bytes data(100, 1);
  EXPECT_EQ(client->Send(data), 0u);
}

}  // namespace
}  // namespace comma::tcp

#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

// A tap that drops the Nth data segment (payload > 0) travelling toward the
// mobile, once.
class NthDataSegmentDropper : public net::PacketTap {
 public:
  explicit NthDataSegmentDropper(int n) : remaining_(n) {}
  net::TapVerdict OnPacket(net::PacketPtr& p, const net::TapContext&) override {
    if (done_ || !p->has_tcp() || p->payload().empty()) {
      return net::TapVerdict::kPass;
    }
    if (--remaining_ == 0) {
      done_ = true;
      dropped_seq_ = p->tcp().seq;
      return net::TapVerdict::kDrop;
    }
    return net::TapVerdict::kPass;
  }
  bool fired() const { return done_; }
  uint32_t dropped_seq() const { return dropped_seq_; }

 private:
  int remaining_;
  bool done_ = false;
  uint32_t dropped_seq_ = 0;
};

class CongestionTest : public TcpFixture {
 public:
  CongestionTest() : TcpFixture(CleanConfig()) {}
  static core::ScenarioConfig CleanConfig() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }
};

TEST_F(CongestionTest, SlowStartDoublesCwnd) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(1'000'000));
  const uint32_t initial_cwnd = client->cwnd();
  // Sample mid-transfer, early enough that the wireless queue has not yet
  // been pushed into overflow.
  sim().RunFor(600 * sim::kMillisecond);
  // After many loss-free RTTs, cwnd must have grown well beyond its initial
  // value (exponential growth in slow start).
  EXPECT_GE(client->cwnd(), 4 * initial_cwnd);
  EXPECT_LT(sink.size(), 1'000'000u);  // Still mid-transfer: sample is valid.
}

TEST_F(CongestionTest, SingleLossTriggersFastRetransmitNotTimeout) {
  NthDataSegmentDropper dropper(8);
  scenario().gateway().AddTap(&dropper);
  util::Bytes sink;
  StartSinkServer(80, &sink);
  util::Bytes payload = Pattern(60'000);
  TcpConnection* client = StartBulkClient(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_TRUE(dropper.fired());
  EXPECT_EQ(sink, payload);
  EXPECT_GE(client->stats().fast_retransmits, 1u);
  EXPECT_EQ(client->stats().retransmit_timeouts, 0u);
  EXPECT_GT(client->stats().dupacks_received, 2u);
}

TEST_F(CongestionTest, FastRetransmitHalvesCongestionWindow) {
  NthDataSegmentDropper dropper(20);
  scenario().gateway().AddTap(&dropper);
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(300'000));

  // Track the peak cwnd reached before loss detection.
  uint32_t peak_cwnd = 0;
  for (int step = 0; step < 3000 && client->stats().fast_retransmits == 0; ++step) {
    sim().RunFor(10 * sim::kMillisecond);
    if (client->stats().fast_retransmits == 0) {
      peak_cwnd = std::max(peak_cwnd, client->cwnd());
    }
  }
  ASSERT_TRUE(dropper.fired());
  ASSERT_GE(client->stats().fast_retransmits, 1u);
  // Reno: ssthresh drops to half the flight at loss, which is bounded by the
  // pre-loss cwnd; recovery exits with cwnd == ssthresh.
  EXPECT_LE(client->ssthresh(), peak_cwnd);
  EXPECT_GE(client->ssthresh(), 2000u);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink.size(), 300'000u);
  EXPECT_EQ(client->stats().retransmit_timeouts, 0u);  // Recovered without RTO.
}

TEST_F(CongestionTest, TimeoutCollapsesCwndToOneSegment) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(500'000));
  sim().RunFor(3 * sim::kSecond);
  EXPECT_GT(client->cwnd(), 2000u);
  // Black-hole the link long enough to force an RTO.
  scenario().wireless_link().SetLossProbability(1.0);
  sim().RunFor(10 * sim::kSecond);
  EXPECT_GT(client->stats().retransmit_timeouts, 0u);
  EXPECT_LE(client->cwnd(), 1000u);  // One MSS.
  scenario().wireless_link().SetLossProbability(0.0);
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink.size(), 500'000u);
}

TEST_F(CongestionTest, ExponentialBackoffGrowsRtoIntervals) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  // Large enough that the transfer is still in full flight when the link
  // goes down.
  TcpConnection* client = StartBulkClient(80, Pattern(5'000'000));
  sim().RunFor(2 * sim::kSecond);
  scenario().wireless_link().SetUp(false);
  uint64_t timeouts_at_10s = 0;
  sim().RunFor(10 * sim::kSecond);
  timeouts_at_10s = client->stats().retransmit_timeouts;
  sim().RunFor(100 * sim::kSecond);
  const uint64_t timeouts_at_110s = client->stats().retransmit_timeouts;
  // With doubling timeouts, the second (10x longer) window must see far fewer
  // than 10x the retransmissions of the first.
  EXPECT_GT(timeouts_at_10s, 0u);
  EXPECT_LT(timeouts_at_110s - timeouts_at_10s, 10 * timeouts_at_10s);
}

TEST_F(CongestionTest, RetransmissionLimitAbortsConnection) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConfig cfg;
  cfg.max_data_retries = 4;
  std::string error;
  TcpConnection* client =
      scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80, cfg);
  client->set_on_error([&](const std::string& e) { error = e; });
  sim().RunFor(2 * sim::kSecond);
  ASSERT_EQ(client->state(), TcpState::kEstablished);
  // Cut the link, then send: every retransmission is lost.
  scenario().wireless_link().SetUp(false);
  util::Bytes data(5000, 0x11);
  client->Send(data);
  sim().RunFor(300 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_NE(error.find("retransmission"), std::string::npos);
}

TEST_F(CongestionTest, SsthreshRemembersCongestionPoint) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(500'000));
  sim().RunFor(3 * sim::kSecond);
  const uint32_t cwnd_before = client->cwnd();
  scenario().wireless_link().SetLossProbability(1.0);
  sim().RunFor(8 * sim::kSecond);
  scenario().wireless_link().SetLossProbability(0.0);
  // ssthresh should be roughly half the pre-loss flight, well below the
  // pre-loss cwnd and at least two segments.
  EXPECT_GE(client->ssthresh(), 2000u);
  EXPECT_LE(client->ssthresh(), cwnd_before);
}

TEST_F(CongestionTest, RttEstimateTracksPathDelay) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(100'000));
  sim().RunFor(5 * sim::kSecond);
  // Path RTT: ~2*(1ms + 5ms) propagation plus serialization; srtt must be in
  // a plausible band.
  EXPECT_GT(client->smoothed_rtt(), 5 * sim::kMillisecond);
  EXPECT_LT(client->smoothed_rtt(), 500 * sim::kMillisecond);
}

TEST_F(CongestionTest, RtoNeverBelowFloor) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, Pattern(100'000));
  sim().RunFor(5 * sim::kSecond);
  EXPECT_GE(client->current_rto(), 500 * sim::kMillisecond);
}

}  // namespace
}  // namespace comma::tcp

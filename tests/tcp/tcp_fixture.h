// Shared fixture for TCP tests: wired host <-> gateway <-> mobile host,
// with helpers for bulk servers/clients.
#ifndef COMMA_TESTS_TCP_TCP_FIXTURE_H_
#define COMMA_TESTS_TCP_TCP_FIXTURE_H_

#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/tcp/tcp_stack.h"

namespace comma::tcp {

class TcpFixture : public ::testing::Test {
 protected:
  explicit TcpFixture(core::ScenarioConfig config = {}) : scenario_(config) {}

  sim::Simulator& sim() { return scenario_.sim(); }
  core::WirelessScenario& scenario() { return scenario_; }

  // Starts a byte-sink server on the mobile host. Received bytes accumulate
  // into `sink`; `server_conn` is set when the connection is accepted.
  void StartSinkServer(uint16_t port, util::Bytes* sink, TcpConnection** server_conn = nullptr,
                       const TcpConfig& config = {}) {
    scenario_.mobile_host().tcp().Listen(
        port,
        [sink, server_conn](TcpConnection* conn) {
          if (server_conn != nullptr) {
            *server_conn = conn;
          }
          conn->set_on_data([sink](const util::Bytes& data) {
            sink->insert(sink->end(), data.begin(), data.end());
          });
          conn->set_on_remote_close([conn] { conn->Close(); });
        },
        config);
  }

  // Connects from the wired host and sends `payload`, closing afterwards.
  // Respects send-buffer backpressure via on_writable.
  TcpConnection* StartBulkClient(uint16_t port, util::Bytes payload,
                                 const TcpConfig& config = {}) {
    TcpConnection* conn =
        scenario_.wired_host().tcp().Connect(scenario_.mobile_addr(), port, config);
    auto remaining = std::make_shared<util::Bytes>(std::move(payload));
    auto pump = [conn, remaining] {
      while (!remaining->empty()) {
        size_t n = conn->Send(remaining->data(), remaining->size());
        if (n == 0) {
          return;
        }
        remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
      }
      if (remaining->empty()) {
        conn->Close();
      }
    };
    conn->set_on_connected(pump);
    conn->set_on_writable(pump);
    return conn;
  }

  static util::Bytes Pattern(size_t n) {
    util::Bytes out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(i * 31 + (i >> 8));
    }
    return out;
  }

  core::WirelessScenario scenario_;
};

}  // namespace comma::tcp

#endif  // COMMA_TESTS_TCP_TCP_FIXTURE_H_

// TCP state-machine edge cases beyond the main suites.
#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

class EdgeTest : public TcpFixture {
 public:
  EdgeTest() : TcpFixture(CleanConfig()) {}
  static core::ScenarioConfig CleanConfig() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }
};

TEST_F(EdgeTest, SimultaneousCloseReachesClosedOnBothEnds) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  // Close both ends in the same event: FINs cross in flight.
  client->Close();
  server->Close();
  sim().RunFor(30 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST_F(EdgeTest, PortReusableAfterConnectionFullyCloses) {
  StartSinkServer(80, nullptr);
  TcpConnection* first =
      scenario().wired_host().tcp().ConnectFrom(5555, scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  first->Close();
  sim().RunFor(30 * sim::kSecond);
  ASSERT_EQ(first->state(), TcpState::kClosed);
  // The same local port connects again.
  bool connected = false;
  TcpConnection* second =
      scenario().wired_host().tcp().ConnectFrom(5555, scenario().mobile_addr(), 80);
  second->set_on_connected([&] { connected = true; });
  sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(connected);
}

TEST_F(EdgeTest, ManyConcurrentConnectionsStayIsolated) {
  constexpr int kConnections = 25;
  std::vector<util::Bytes> sinks(kConnections);
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    // Demultiplex by first payload byte.
    c->set_on_data([&, c](const util::Bytes& d) {
      if (!d.empty()) {
        sinks[d[0] % kConnections].insert(sinks[d[0] % kConnections].end(), d.begin(), d.end());
      }
      (void)c;
    });
    c->set_on_remote_close([c] { c->Close(); });
  });
  std::vector<TcpConnection*> clients;
  for (int i = 0; i < kConnections; ++i) {
    TcpConnection* conn = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
    conn->set_on_connected([conn, i] {
      util::Bytes data(2000, static_cast<uint8_t>(i));
      conn->Send(data);
      conn->Close();
    });
    clients.push_back(conn);
  }
  sim().RunFor(120 * sim::kSecond);
  for (int i = 0; i < kConnections; ++i) {
    EXPECT_EQ(clients[static_cast<size_t>(i)]->state(), TcpState::kClosed) << i;
    EXPECT_EQ(sinks[static_cast<size_t>(i)].size(), 2000u) << i;
    for (uint8_t b : sinks[static_cast<size_t>(i)]) {
      ASSERT_EQ(b, static_cast<uint8_t>(i));
    }
  }
}

TEST_F(EdgeTest, ClosedListenerRefusesWithReset) {
  scenario().mobile_host().tcp().Listen(80, [](TcpConnection*) {});
  scenario().mobile_host().tcp().CloseListener(80);
  std::string error;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_error([&](const std::string& e) { error = e; });
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_NE(error.find("reset"), std::string::npos);
}

TEST_F(EdgeTest, SendExactlyOneWindowOfData) {
  // Payload exactly equal to the receive buffer: the edge where the window
  // closes at the same instant the data completes.
  TcpConfig cfg;
  cfg.recv_buffer = 8 * 1024;
  util::Bytes sink;
  StartSinkServer(80, &sink, nullptr, cfg);
  util::Bytes payload = Pattern(8 * 1024);
  StartBulkClient(80, payload, cfg);
  sim().RunFor(30 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

TEST_F(EdgeTest, CloseDuringZeroWindowStallCompletesViaProbes) {
  // The app closes while the peer's window is shut: the FIN must eventually
  // get through via the persist machinery once the window reopens.
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 2048;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);
  TcpConnection* client = StartBulkClient(80, Pattern(10'000));
  sim().RunFor(20 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  ASSERT_TRUE(client->InPersistMode());
  // Drain everything; the close sequence then finishes.
  util::Bytes drained;
  std::function<void()> drain = [&] {
    util::Bytes chunk = server->Read(2048);
    drained.insert(drained.end(), chunk.begin(), chunk.end());
    if (drained.size() < 10'000) {
      sim().Schedule(200 * sim::kMillisecond, drain);
    } else {
      server->Close();
    }
  };
  drain();
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(drained.size(), 10'000u);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(EdgeTest, AbortDuringActiveTransferResetsPeer) {
  util::Bytes sink;
  TcpConnection* server = nullptr;
  StartSinkServer(80, &sink, &server);
  TcpConnection* client = StartBulkClient(80, Pattern(500'000));
  sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  ASSERT_LT(sink.size(), 500'000u);
  client->Abort();
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_EQ(server->state(), TcpState::kClosed);
}

TEST_F(EdgeTest, DataArrivingInTimeWaitIsIgnoredQuietly) {
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) { server = c; });
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  sim().RunFor(2 * sim::kSecond);
  client->Close();
  sim().RunFor(sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  server->Close();
  sim().RunFor(300 * sim::kMillisecond);
  // Client sits in TIME_WAIT; a retransmitted FIN elicits a re-ack, not a
  // crash or state change.
  EXPECT_EQ(client->state(), TcpState::kTimeWait);
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
}

TEST_F(EdgeTest, ZeroByteTransferJustCloses) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  TcpConnection* client = StartBulkClient(80, {});
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_TRUE(sink.empty());
}

}  // namespace
}  // namespace comma::tcp

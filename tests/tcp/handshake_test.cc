#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

class HandshakeTest : public TcpFixture {};

TEST_F(HandshakeTest, ThreeWayHandshakeEstablishes) {
  bool accepted = false;
  TcpConnection* server = nullptr;
  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    accepted = true;
    server = c;
  });
  bool connected = false;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_connected([&] { connected = true; });
  sim().RunFor(5 * sim::kSecond);

  EXPECT_TRUE(connected);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(server->remote_port(), client->local_port());
}

TEST_F(HandshakeTest, ConnectToClosedPortGetsReset) {
  std::string error;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 81);
  client->set_on_error([&](const std::string& e) { error = e; });
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_NE(error.find("reset"), std::string::npos);
}

TEST_F(HandshakeTest, SynRetransmitsThroughLoss) {
  // 100% loss initially; heal the link after 4 seconds. The SYN must be
  // retried with backoff and eventually succeed.
  scenario().wireless_link().SetLossProbability(1.0);
  bool connected = false;
  StartSinkServer(80, nullptr);
  scenario().mobile_host().tcp().Listen(82, [](TcpConnection*) {});
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 82);
  client->set_on_connected([&] { connected = true; });
  sim().RunFor(4 * sim::kSecond);
  EXPECT_FALSE(connected);
  scenario().wireless_link().SetLossProbability(0.0);
  sim().RunFor(30 * sim::kSecond);
  EXPECT_TRUE(connected);
  EXPECT_GT(client->stats().retransmit_timeouts, 0u);
}

TEST_F(HandshakeTest, ConnectTimesOutWhenPeerUnreachable) {
  scenario().wireless_link().SetUp(false);
  scenario().mobile_host().tcp().Listen(83, [](TcpConnection*) {});
  std::string error;
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 83);
  client->set_on_error([&](const std::string& e) { error = e; });
  sim().RunFor(600 * sim::kSecond);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_FALSE(error.empty());
}

TEST_F(HandshakeTest, LostSynAckIsRecovered) {
  // Drop exactly the first SYN+ACK (mobile -> wired direction).
  scenario().wireless_link().SetLossProbability(0.0);
  bool first = true;
  class SynAckDropper : public net::PacketTap {
   public:
    explicit SynAckDropper(bool* flag) : flag_(flag) {}
    net::TapVerdict OnPacket(net::PacketPtr& p, const net::TapContext&) override {
      if (*flag_ && p->has_tcp() && (p->tcp().flags & net::kTcpSyn) &&
          (p->tcp().flags & net::kTcpAck)) {
        *flag_ = false;
        return net::TapVerdict::kDrop;
      }
      return net::TapVerdict::kPass;
    }
    bool* flag_;
  } dropper(&first);
  scenario().gateway().AddTap(&dropper);

  bool connected = false;
  scenario().mobile_host().tcp().Listen(84, [](TcpConnection*) {});
  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 84);
  client->set_on_connected([&] { connected = true; });
  sim().RunFor(30 * sim::kSecond);
  EXPECT_TRUE(connected);
  EXPECT_FALSE(first);  // The dropper fired.
}

TEST_F(HandshakeTest, EphemeralPortsAreDistinct) {
  scenario().mobile_host().tcp().Listen(80, [](TcpConnection*) {});
  TcpConnection* a = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  TcpConnection* b = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  EXPECT_NE(a->local_port(), b->local_port());
  sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(a->state(), TcpState::kEstablished);
  EXPECT_EQ(b->state(), TcpState::kEstablished);
}

TEST_F(HandshakeTest, DataMayRideImmediatelyAfterConnect) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  util::Bytes payload = Pattern(500);
  StartBulkClient(80, payload);
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

}  // namespace
}  // namespace comma::tcp

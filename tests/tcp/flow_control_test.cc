#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

class FlowControlTest : public TcpFixture {
 public:
  FlowControlTest() : TcpFixture(CleanConfig()) {}
  static core::ScenarioConfig CleanConfig() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }
};

TEST_F(FlowControlTest, SlowReaderStallsSender) {
  // Server never reads: its 8 KiB receive buffer fills, the advertised
  // window closes, and the sender stalls.
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 8 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);

  TcpConnection* client = StartBulkClient(80, Pattern(100'000));
  sim().RunFor(30 * sim::kSecond);

  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(server->UnreadBytes(), 8u * 1024);
  EXPECT_GT(client->stats().zero_window_acks_received, 0u);
  EXPECT_TRUE(client->InPersistMode());
}

TEST_F(FlowControlTest, PersistProbesKeepConnectionAlive) {
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 4 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);
  TcpConnection* client = StartBulkClient(80, Pattern(50'000));
  // Stall for five minutes: far beyond any data RTO limit, but persist mode
  // never aborts (thesis §8.2.2: the stream "stays alive indefinitely").
  sim().RunFor(300 * sim::kSecond);
  EXPECT_NE(client->state(), TcpState::kClosed);
  EXPECT_GT(client->stats().persist_probes_sent, 2u);
}

TEST_F(FlowControlTest, ReadReopensWindowAndTransferCompletes) {
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 8 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);

  util::Bytes payload = Pattern(60'000);
  StartBulkClient(80, payload);
  sim().RunFor(10 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);

  // Drain the receive queue periodically; the window reopens each time.
  util::Bytes sink;
  std::function<void()> drain = [&] {
    util::Bytes chunk = server->Read(4096);
    sink.insert(sink.end(), chunk.begin(), chunk.end());
    if (sink.size() < payload.size()) {
      sim().Schedule(100 * sim::kMillisecond, drain);
    }
  };
  drain();
  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

TEST_F(FlowControlTest, SenderRespectsReceiveWindow) {
  // The receiver advertises at most recv_buffer; unacked in-flight data must
  // never exceed it.
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 6 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);
  StartBulkClient(80, Pattern(100'000));
  sim().RunFor(20 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  EXPECT_LE(server->UnreadBytes(), 6u * 1024);
}

TEST_F(FlowControlTest, WindowedTrickleDeliversEverything) {
  // Tiny 2 KiB window + incremental reads: a torture test for window-edge
  // arithmetic.
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 2 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);
  util::Bytes payload = Pattern(30'000);
  StartBulkClient(80, payload);

  util::Bytes sink;
  std::function<void()> drain = [&] {
    if (server != nullptr) {
      util::Bytes chunk = server->Read(512);
      sink.insert(sink.end(), chunk.begin(), chunk.end());
    }
    if (sink.size() < payload.size()) {
      sim().Schedule(20 * sim::kMillisecond, drain);
    }
  };
  sim().Schedule(sim::kSecond, drain);
  sim().RunFor(700 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

TEST_F(FlowControlTest, ZeroWindowAckIsNotCountedAsDupack) {
  TcpConnection* server = nullptr;
  TcpConfig server_cfg;
  server_cfg.auto_consume = false;
  server_cfg.recv_buffer = 4 * 1024;
  scenario().mobile_host().tcp().Listen(
      80, [&](TcpConnection* c) { server = c; }, server_cfg);
  TcpConnection* client = StartBulkClient(80, Pattern(50'000));
  sim().RunFor(30 * sim::kSecond);
  // The stall must be handled by persist mode, not misread as loss.
  EXPECT_EQ(client->stats().fast_retransmits, 0u);
}

}  // namespace
}  // namespace comma::tcp

#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

class TransferTest : public TcpFixture {};

TEST_F(TransferTest, SmallTransferDeliversExactBytes) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  util::Bytes payload = Pattern(100);
  StartBulkClient(80, payload);
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

TEST_F(TransferTest, MultiSegmentTransferPreservesOrder) {
  util::Bytes sink;
  StartSinkServer(80, &sink);
  util::Bytes payload = Pattern(50'000);
  StartBulkClient(80, payload);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink.size(), payload.size());
  EXPECT_EQ(sink, payload);
}

TEST_F(TransferTest, LargeTransferOverCleanLink) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  core::WirelessScenario s(cfg);
  util::Bytes sink;
  s.mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  util::Bytes payload = Pattern(500'000);
  TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  s.sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink, payload);
  // Clean link: no retransmissions.
  EXPECT_EQ(client->stats().bytes_retransmitted, 0u);
}

TEST_F(TransferTest, TransferSurvivesHeavyLoss) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.10;  // 10% packet loss.
  cfg.seed = 1234;
  core::WirelessScenario s(cfg);
  util::Bytes sink;
  s.mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  util::Bytes payload = Pattern(100'000);
  TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  s.sim().RunFor(600 * sim::kSecond);
  EXPECT_EQ(sink, payload);  // Reliability despite loss.
  EXPECT_GT(client->stats().bytes_retransmitted, 0u);
}

TEST_F(TransferTest, BidirectionalTransfer) {
  util::Bytes to_mobile = Pattern(20'000);
  util::Bytes to_wired = Pattern(15'000);
  util::Bytes mobile_sink;
  util::Bytes wired_sink;

  scenario().mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) {
      mobile_sink.insert(mobile_sink.end(), d.begin(), d.end());
    });
    auto remaining = std::make_shared<util::Bytes>(to_wired);
    auto pump = [c, remaining] {
      while (!remaining->empty()) {
        size_t n = c->Send(remaining->data(), remaining->size());
        if (n == 0) {
          return;
        }
        remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
      }
    };
    c->set_on_writable(pump);
    pump();
  });

  TcpConnection* client = scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80);
  client->set_on_data([&](const util::Bytes& d) {
    wired_sink.insert(wired_sink.end(), d.begin(), d.end());
  });
  auto remaining = std::make_shared<util::Bytes>(to_mobile);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);

  sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(mobile_sink, to_mobile);
  EXPECT_EQ(wired_sink, to_wired);
}

TEST_F(TransferTest, SendBufferBackpressure) {
  StartSinkServer(80, nullptr);
  TcpConfig cfg;
  cfg.send_buffer = 4096;
  TcpConnection* client =
      scenario().wired_host().tcp().Connect(scenario().mobile_addr(), 80, cfg);
  util::Bytes big(100'000, 0xaa);
  // Before establishment the buffer accepts at most its cap.
  size_t accepted = client->Send(big);
  EXPECT_LE(accepted, 4096u);
  EXPECT_GT(accepted, 0u);
}

TEST_F(TransferTest, ThroughputApproachesWirelessLineRate) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  cfg.wireless.bandwidth_bps = 1'000'000;
  core::WirelessScenario s(cfg);
  util::Bytes sink;
  s.mobile_host().tcp().Listen(80, [&](TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  const size_t total = 1'000'000;
  TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
  auto sent = std::make_shared<size_t>(0);
  auto pump = [client, sent, total] {
    static const util::Bytes chunk(4096, 0x77);
    while (*sent < total) {
      size_t n = client->Send(chunk.data(), std::min(chunk.size(), total - *sent));
      if (n == 0) {
        return;
      }
      *sent += n;
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  // Run until the sink has everything, then compute goodput over the actual
  // transfer duration.
  sim::TimePoint done = 0;
  for (int step = 0; step < 600 && sink.size() < total; ++step) {
    s.sim().RunFor(100 * sim::kMillisecond);
    done = s.sim().Now();
  }
  ASSERT_EQ(sink.size(), total);
  const double goodput_bps = static_cast<double>(total) * 8 / sim::DurationToSeconds(done);
  // At least 60% of the 1 Mbit/s line rate (headers + slow start take their
  // share).
  EXPECT_GT(goodput_bps, 0.6e6);
}

TEST_F(TransferTest, StatsAccounting) {
  util::Bytes sink;
  TcpConnection* server = nullptr;
  StartSinkServer(80, &sink, &server);
  util::Bytes payload = Pattern(10'000);
  TcpConnection* client = StartBulkClient(80, payload);
  sim().RunFor(30 * sim::kSecond);
  ASSERT_TRUE(server != nullptr);
  EXPECT_EQ(client->stats().bytes_sent, payload.size());
  EXPECT_EQ(server->stats().bytes_received, payload.size());
  EXPECT_GT(client->stats().segments_sent, payload.size() / 1000);
  EXPECT_GT(server->stats().segments_received, 0u);
}

}  // namespace
}  // namespace comma::tcp

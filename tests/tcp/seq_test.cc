#include "src/tcp/seq.h"

#include <gtest/gtest.h>

namespace comma::tcp {
namespace {

TEST(SeqTest, BasicOrdering) {
  EXPECT_TRUE(SeqLt(1, 2));
  EXPECT_TRUE(SeqLeq(2, 2));
  EXPECT_TRUE(SeqGt(3, 2));
  EXPECT_TRUE(SeqGeq(2, 2));
  EXPECT_FALSE(SeqLt(2, 2));
}

TEST(SeqTest, WrapAroundOrdering) {
  // 0xffffff00 + 0x200 wraps past zero; the wrapped value is "greater".
  const uint32_t before = 0xffffff00u;
  const uint32_t after = before + 0x200;  // 0x100.
  EXPECT_TRUE(SeqLt(before, after));
  EXPECT_TRUE(SeqGt(after, before));
}

TEST(SeqTest, DiffIsSigned) {
  EXPECT_EQ(SeqDiff(5, 3), 2);
  EXPECT_EQ(SeqDiff(3, 5), -2);
  EXPECT_EQ(SeqDiff(0x100, 0xffffff00u), 0x200);
}

TEST(SeqTest, MinMaxRespectWrap) {
  const uint32_t a = 0xfffffffeu;
  const uint32_t b = 2;  // Logically after a.
  EXPECT_EQ(SeqMax(a, b), b);
  EXPECT_EQ(SeqMin(a, b), a);
  EXPECT_EQ(SeqMax(7, 7), 7u);
}

}  // namespace
}  // namespace comma::tcp

// Property-style sweeps over the TCP stack: for every combination of
// payload size, loss rate, and receive window, a transfer must deliver
// exactly the sent bytes, in order, and close cleanly.
#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace comma::tcp {
namespace {

struct TransferCase {
  size_t payload;
  double loss;
  uint32_t recv_window;
  uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const TransferCase& c) {
    return os << "payload" << c.payload << "_loss" << static_cast<int>(c.loss * 1000)
              << "permille_win" << c.recv_window << "_seed" << c.seed;
  }
};

class TransferProperty : public ::testing::TestWithParam<TransferCase> {};

TEST_P(TransferProperty, DeliversExactBytesAndCloses) {
  const TransferCase& c = GetParam();
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = c.loss;
  cfg.seed = c.seed;
  core::WirelessScenario s(cfg);

  TcpConfig tcp_cfg;
  tcp_cfg.recv_buffer = c.recv_window;

  util::Bytes payload(c.payload);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
  }

  util::Bytes sink;
  bool server_closed = false;
  s.mobile_host().tcp().Listen(
      80,
      [&](TcpConnection* conn) {
        conn->set_on_data(
            [&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
        conn->set_on_remote_close([conn] { conn->Close(); });
        conn->set_on_closed([&] { server_closed = true; });
      },
      tcp_cfg);

  TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80, tcp_cfg);
  bool client_closed = false;
  client->set_on_closed([&] { client_closed = true; });
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);

  // Generous budget: the worst case (20% loss) needs many RTO rounds.
  for (int step = 0; step < 40 && !(client_closed && server_closed); ++step) {
    s.sim().RunFor(30 * sim::kSecond);
  }
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  ASSERT_EQ(sink.size(), payload.size());
  EXPECT_EQ(sink, payload);  // Exact bytes, exact order.
  // Reliability invariant: everything counted as received was in-order.
  EXPECT_EQ(client->stats().bytes_sent, payload.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransferProperty,
    ::testing::Values(
        // Size sweep on a mildly lossy link.
        TransferCase{1, 0.01, 32768, 11}, TransferCase{999, 0.01, 32768, 12},
        TransferCase{1000, 0.01, 32768, 13}, TransferCase{1001, 0.01, 32768, 14},
        TransferCase{64 * 1024, 0.01, 32768, 15}, TransferCase{300'000, 0.01, 32768, 16},
        // Loss sweep.
        TransferCase{120'000, 0.0, 32768, 21}, TransferCase{120'000, 0.05, 32768, 22},
        TransferCase{120'000, 0.10, 32768, 23}, TransferCase{120'000, 0.20, 32768, 24},
        // Window sweep (tiny windows stress zero-window handling).
        TransferCase{60'000, 0.02, 2048, 31}, TransferCase{60'000, 0.02, 4096, 32},
        TransferCase{60'000, 0.02, 60000, 33},
        // Window == exactly one MSS.
        TransferCase{20'000, 0.0, 1000, 41}, TransferCase{20'000, 0.05, 1000, 42}));

// Bidirectional integrity under loss: both directions carry distinct data
// concurrently and both must arrive exactly.
class BidirectionalProperty : public ::testing::TestWithParam<double> {};

TEST_P(BidirectionalProperty, BothDirectionsExact) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = GetParam();
  cfg.seed = 1234 + static_cast<uint64_t>(GetParam() * 1000);
  core::WirelessScenario s(cfg);

  util::Bytes to_mobile(80'000);
  util::Bytes to_wired(50'000);
  for (size_t i = 0; i < to_mobile.size(); ++i) {
    to_mobile[i] = static_cast<uint8_t>(i * 7);
  }
  for (size_t i = 0; i < to_wired.size(); ++i) {
    to_wired[i] = static_cast<uint8_t>(i * 13 + 5);
  }

  util::Bytes mobile_sink;
  util::Bytes wired_sink;
  s.mobile_host().tcp().Listen(80, [&](TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& d) {
      mobile_sink.insert(mobile_sink.end(), d.begin(), d.end());
    });
    auto remaining = std::make_shared<util::Bytes>(to_wired);
    auto pump = [conn, remaining] {
      while (!remaining->empty()) {
        size_t n = conn->Send(remaining->data(), remaining->size());
        if (n == 0) {
          return;
        }
        remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
      }
    };
    conn->set_on_writable(pump);
    pump();
  });

  TcpConnection* client = s.wired_host().tcp().Connect(s.mobile_addr(), 80);
  client->set_on_data([&](const util::Bytes& d) {
    wired_sink.insert(wired_sink.end(), d.begin(), d.end());
  });
  auto remaining = std::make_shared<util::Bytes>(to_mobile);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);

  s.sim().RunFor(600 * sim::kSecond);
  EXPECT_EQ(mobile_sink, to_mobile);
  EXPECT_EQ(wired_sink, to_wired);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, BidirectionalProperty,
                         ::testing::Values(0.0, 0.02, 0.08));

}  // namespace
}  // namespace comma::tcp

// Grand-tour integration test: the whole Comma architecture (Fig. 4.1)
// working at once — SP + filters + EEM + Kati + workloads + wireless
// variability — in a single scenario.
#include "src/core/comma_system.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/apps/media.h"
#include "src/apps/request_response.h"
#include "src/filters/wsize_filter.h"

namespace comma::core {
namespace {

TEST(SystemTest, FullArchitectureGrandTour) {
  CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.02;
  config.eem.check_interval = 200 * sim::kMillisecond;
  config.eem.update_interval = sim::kSecond;
  CommaSystem comma(config);

  // --- Kati connects and provisions services over the wire ---
  std::string kati_output;
  auto kati = comma.MakeKati([&](const std::string& text) { kati_output += text; });
  auto run_kati = [&](const std::string& line) {
    const uint64_t before = kati->responses_received();
    kati->Execute(line);
    for (int step = 0; step < 200 && kati->responses_received() == before; ++step) {
      comma.sim().RunFor(100 * sim::kMillisecond);
    }
    ASSERT_GT(kati->responses_received(), before) << line;
  };

  run_kati("service add reliable-wireless 0.0.0.0 0 11.11.10.10 80");
  run_kati("service add media-thin 0.0.0.0 0 11.11.10.10 5004");
  run_kati("add meter 0.0.0.0 0 11.11.10.10 0");
  run_kati("watch ifOutQLen 2");

  // --- Workloads: bulk + interactive + media, all concurrent ---
  apps::BulkSink bulk_sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender bulk(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                        apps::TextPayload(400'000));
  apps::RequestResponseServer rr_server(&comma.scenario().mobile_host(), 81, 64, 256);
  apps::RequestResponseClient rr_client(&comma.scenario().wired_host(),
                                        comma.scenario().mobile_addr(), 81, 64, 256, 30);
  apps::MediaSink media_sink(&comma.scenario().mobile_host(), 5004);
  apps::MediaSourceConfig media_cfg;
  apps::LayeredMediaSource media(&comma.scenario().wired_host(),
                                 comma.scenario().mobile_addr(), media_cfg);
  media.Start();

  // --- Mid-run wireless turbulence: a squeeze and a brief outage ---
  comma.sim().Schedule(5 * sim::kSecond,
                       [&] { comma.scenario().wireless_link().SetBandwidth(400'000); });
  comma.sim().Schedule(10 * sim::kSecond,
                       [&] { comma.scenario().wireless_link().SetUp(false); });
  comma.sim().Schedule(13 * sim::kSecond, [&] {
    comma.scenario().wireless_link().SetUp(true);
    comma.scenario().wireless_link().SetBandwidth(1'000'000);
  });

  comma.sim().RunFor(240 * sim::kSecond);
  media.Stop();
  comma.sim().RunFor(60 * sim::kSecond);

  // --- Everything arrived despite loss, squeeze, and outage ---
  EXPECT_EQ(bulk_sink.received(), apps::TextPayload(400'000));
  EXPECT_TRUE(bulk.finished());
  EXPECT_TRUE(rr_client.finished());
  EXPECT_EQ(rr_client.completed(), 30);

  // The media-thin service kept only the base layer.
  EXPECT_GT(media_sink.frames_per_layer(0), 0u);
  EXPECT_EQ(media_sink.frames_per_layer(1), 0u);
  EXPECT_EQ(media_sink.frames_per_layer(2), 0u);

  // The snoop service kept end-to-end retransmission at zero.
  EXPECT_EQ(bulk.connection()->stats().fast_retransmits, 0u);

  // --- Kati still sees and reports everything ---
  kati_output.clear();
  run_kati("report");
  EXPECT_NE(kati_output.find("launcher"), std::string::npos);
  EXPECT_NE(kati_output.find("meter"), std::string::npos);
  kati_output.clear();
  run_kati("streams");
  // The media stream (no TCP teardown) is still registered...
  EXPECT_NE(kati_output.find("11.11.10.10 5004"), std::string::npos);
  // ...but the finished bulk stream was cleaned out by its tcp filter
  // ("deleting all filters associated with TCP streams when the stream
  // closes", §5.3.2).
  EXPECT_EQ(kati_output.find("11.11.10.10 80 "), std::string::npos);
  kati_output.clear();
  run_kati("vars");
  EXPECT_NE(kati_output.find("ifOutQLen"), std::string::npos);

  // Proxy accounting is live.
  EXPECT_GT(comma.sp().stats().packets_inspected, 500u);
  EXPECT_GT(comma.sp().stats().packets_dropped, 0u);  // Media layers discarded.
}

TEST(SystemTest, ZwsmServiceSurvivesOutageViaEem) {
  // The full EEM-driven loop: link down -> EEM interrupt -> wsize ZWSM ->
  // persist -> link up -> EEM interrupt -> window update -> resume.
  CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.eem.check_interval = 100 * sim::kMillisecond;
  CommaSystem comma(config);

  proxy::StreamKey ack_path{comma.scenario().mobile_addr(), 80, net::Ipv4Address(), 0};
  std::string error;
  ASSERT_TRUE(comma.sp().AddService("launcher", ack_path, {"tcp", "wsize:zwsm:2"}, &error))
      << error;

  tcp::TcpConfig tcp_cfg;
  tcp_cfg.max_data_retries = 6;
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80, tcp_cfg);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::PatternPayload(1'000'000), tcp_cfg);
  comma.sim().RunFor(3 * sim::kSecond);
  comma.scenario().wireless_link().SetUp(false);
  comma.sim().RunFor(300 * sim::kSecond);  // Far beyond the retry budget.
  EXPECT_NE(sender.connection()->state(), tcp::TcpState::kClosed);
  EXPECT_TRUE(sender.connection()->InPersistMode());
  comma.scenario().wireless_link().SetUp(true);
  comma.sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 1'000'000u);
}

TEST(SystemTest, DoubleProxyCompressionViaCatalog) {
  CommaSystemConfig config;
  config.scenario.wireless.loss_probability = 0.01;
  config.scenario.wireless.bandwidth_bps = 300'000;
  CommaSystem comma(config);
  proxy::StreamKey key{net::Ipv4Address(), 0, comma.scenario().mobile_addr(), 80};
  std::string error;
  ASSERT_TRUE(comma.catalog().Apply(comma.sp(), "compressed", key, &error)) << error;
  ASSERT_TRUE(comma.catalog().Apply(comma.MobileProxy(), "decompress", key, &error)) << error;
  apps::BulkSink sink(&comma.scenario().mobile_host(), 80);
  apps::BulkSender sender(&comma.scenario().wired_host(), comma.scenario().mobile_addr(), 80,
                          apps::TextPayload(120'000));
  comma.sim().RunFor(300 * sim::kSecond);
  EXPECT_EQ(sink.received(), apps::TextPayload(120'000));
}

}  // namespace
}  // namespace comma::core

// ICMP echo + the measured netLatency metric (Table 6.2).
#include "src/core/ping.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/core/scenario.h"
#include "src/monitor/eem_server.h"

namespace comma::core {
namespace {

class PingTest : public ::testing::Test {
 protected:
  PingTest() {
    ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<WirelessScenario>(cfg);
  }
  WirelessScenario& s() { return *scenario_; }
  std::unique_ptr<WirelessScenario> scenario_;
};

TEST_F(PingTest, RoundTripAcrossOneHop) {
  Pinger pinger(&s().mobile_host(), &s().mobile_host().icmp_responder());
  sim::Duration rtt = 0;
  pinger.Ping(s().gateway_wireless_addr(), [&](sim::Duration r) { rtt = r; });
  s().sim().RunFor(sim::kSecond);
  // 2 * (5 ms propagation + ~0.6 ms serialization of an 84-byte probe).
  EXPECT_GT(rtt, 10 * sim::kMillisecond);
  EXPECT_LT(rtt, 15 * sim::kMillisecond);
  EXPECT_EQ(pinger.replies_received(), 1u);
  EXPECT_EQ(s().gateway().icmp_responder().requests_answered(), 1u);
}

TEST_F(PingTest, RoundTripAcrossTwoHops) {
  Pinger pinger(&s().wired_host(), &s().wired_host().icmp_responder());
  sim::Duration rtt = 0;
  pinger.Ping(s().mobile_addr(), [&](sim::Duration r) { rtt = r; });
  s().sim().RunFor(sim::kSecond);
  EXPECT_GT(rtt, 12 * sim::kMillisecond);  // Wired + wireless legs.
  EXPECT_LT(rtt, 20 * sim::kMillisecond);
}

TEST_F(PingTest, TimeoutWhenTargetUnreachable) {
  s().wireless_link().SetUp(false);
  Pinger pinger(&s().wired_host(), &s().wired_host().icmp_responder());
  sim::Duration rtt = 0;
  pinger.Ping(s().mobile_addr(), [&](sim::Duration r) { rtt = r; });
  s().sim().RunFor(5 * sim::kSecond);
  EXPECT_LT(rtt, 0);
  EXPECT_EQ(pinger.timeouts(), 1u);
  EXPECT_EQ(pinger.replies_received(), 0u);
}

TEST_F(PingTest, ConcurrentPingsMatchBySequence) {
  Pinger pinger(&s().wired_host(), &s().wired_host().icmp_responder());
  int replies = 0;
  for (int i = 0; i < 5; ++i) {
    pinger.Ping(s().mobile_addr(), [&](sim::Duration r) {
      EXPECT_GT(r, 0);
      ++replies;
    });
  }
  s().sim().RunFor(sim::kSecond);
  EXPECT_EQ(replies, 5);
}

TEST_F(PingTest, TwoPingersCoexistById) {
  Pinger a(&s().wired_host(), &s().wired_host().icmp_responder());
  // Only one Pinger can own a node's ICMP handler; a second pinger on a
  // *different* host targeting the same responder works independently.
  Pinger b(&s().mobile_host(), &s().mobile_host().icmp_responder());
  int a_replies = 0;
  int b_replies = 0;
  a.Ping(s().gateway_wired_addr(), [&](sim::Duration) { ++a_replies; });
  b.Ping(s().gateway_wireless_addr(), [&](sim::Duration) { ++b_replies; });
  s().sim().RunFor(sim::kSecond);
  EXPECT_EQ(a_replies, 1);
  EXPECT_EQ(b_replies, 1);
}

TEST_F(PingTest, NetLatencyIsMeasuredAndTracksCongestion) {
  // The EEM's netLatency uses real pings: under a saturating bulk transfer
  // the measured RTT inflates with the queue — the live signal adaptive
  // services feed on, which no static estimate could provide.
  monitor::EemServerConfig cfg;
  cfg.check_interval = 200 * sim::kMillisecond;
  monitor::EemServer server(&s().mobile_host(), cfg);

  s().sim().RunFor(3 * sim::kSecond);
  auto idle = server.ReadVariable("netLatency", 0);
  ASSERT_TRUE(idle.has_value());
  const double idle_ms = std::get<double>(*idle);
  EXPECT_GT(idle_ms, 5.0);
  EXPECT_LT(idle_ms, 30.0);

  apps::BulkSink sink(&s().mobile_host(), 80);
  apps::BulkSender sender(&s().wired_host(), s().mobile_addr(), 80,
                          apps::PatternPayload(5'000'000));
  s().sim().RunFor(5 * sim::kSecond);
  auto loaded = server.ReadVariable("netLatency", 0);
  ASSERT_TRUE(loaded.has_value());
  // The 32-packet wireless queue adds up to ~260 ms of queueing delay.
  EXPECT_GT(std::get<double>(*loaded), 3 * idle_ms);
}

}  // namespace
}  // namespace comma::core

// Baseline approaches from thesis Ch. 3: I-TCP split connections and
// AIRMAIL-style link-layer ARQ.
#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/baselines/itcp.h"
#include "src/baselines/link_arq.h"
#include "src/core/scenario.h"

namespace comma::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  explicit BaselinesTest(double loss = 0.0) {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = loss;
    cfg.seed = 77;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
  }
  core::WirelessScenario& s() { return *scenario_; }
  std::unique_ptr<core::WirelessScenario> scenario_;
};

TEST_F(BaselinesTest, ItcpSpliceDeliversBytes) {
  apps::BulkSink sink(&s().mobile_host(), 80);
  ItcpRelay relay(&s().gateway(), 8080, s().mobile_addr(), 80);
  // The client connects to the relay, I-TCP style.
  apps::BulkSender sender(&s().wired_host(), s().gateway_wired_addr(), 8080,
                          apps::PatternPayload(100'000));
  s().sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink.received(), apps::PatternPayload(100'000));
  EXPECT_EQ(relay.stats().connections_spliced, 1u);
  EXPECT_EQ(relay.stats().bytes_wired_in, 100'000u);
}

TEST_F(BaselinesTest, ItcpReverseDirectionWorks) {
  // Server-push through the splice: mobile-side server sends on accept.
  s().mobile_host().tcp().Listen(80, [](tcp::TcpConnection* c) {
    util::Bytes data(8000, 0x5c);
    c->Send(data);
    c->Close();
  });
  ItcpRelay relay(&s().gateway(), 8080, s().mobile_addr(), 80);
  util::Bytes client_received;
  tcp::TcpConnection* client = s().wired_host().tcp().Connect(s().gateway_wired_addr(), 8080);
  client->set_on_data([&](const util::Bytes& d) {
    client_received.insert(client_received.end(), d.begin(), d.end());
  });
  s().sim().RunFor(30 * sim::kSecond);
  EXPECT_EQ(client_received.size(), 8000u);
}

TEST_F(BaselinesTest, ItcpAcksDataTheMobileNeverReceives) {
  // The §5.1.2 end-to-end violation, demonstrated: the sender finishes
  // "successfully" even though the wireless side dies with data undelivered.
  apps::BulkSink sink(&s().mobile_host(), 80);
  ItcpRelay relay(&s().gateway(), 8080, s().mobile_addr(), 80);
  tcp::TcpConfig wireless_cfg = ItcpRelay::WirelessTuned();
  wireless_cfg.max_data_retries = 5;
  ItcpRelay relay2(&s().gateway(), 8081, s().mobile_addr(), 81, wireless_cfg);
  apps::BulkSink sink2(&s().mobile_host(), 81);
  apps::BulkSender sender(&s().wired_host(), s().gateway_wired_addr(), 8081,
                          apps::PatternPayload(2'000'000));
  s().sim().RunFor(2 * sim::kSecond);
  ASSERT_LT(sink2.bytes_received(), 2'000'000u);  // Mid-flight.
  // Kill the wireless link forever mid-transfer.
  s().wireless_link().SetUp(false);
  s().sim().RunFor(600 * sim::kSecond);
  // The sender delivered everything into the relay and believes it done...
  EXPECT_GT(relay2.stats().bytes_wired_in, sink2.bytes_received());
  // ...but a chunk never reached the mobile: orphaned bytes.
  EXPECT_GT(relay2.stats().bytes_orphaned, 0u);
}

class LossyBaselinesTest : public BaselinesTest {
 protected:
  LossyBaselinesTest() : BaselinesTest(0.08) {}
};

TEST_F(LossyBaselinesTest, ArqMakesLossyLinkReliable) {
  ArqEndpoint gateway_arq(&s().gateway(), s().mobile_addr(),
                          ArqEndpoint::WrapMode::kTowardPeerAddress);
  ArqEndpoint mobile_arq(&s().mobile_host(), s().gateway_wireless_addr(),
                         ArqEndpoint::WrapMode::kEverything);
  apps::BulkSink sink(&s().mobile_host(), 80);
  apps::BulkSender sender(&s().wired_host(), s().mobile_addr(), 80,
                          apps::PatternPayload(100'000));
  s().sim().RunFor(300 * sim::kSecond);
  EXPECT_EQ(sink.received(), apps::PatternPayload(100'000));
  EXPECT_GT(gateway_arq.stats().retransmissions, 0u);
  // The link looks reliable, but not perfectly transparent: out-of-order
  // delivery after link-layer recovery produces duplicate acks, and the
  // sender "fast retransmits a packet that has already arrived at the
  // mobile" (§3.2's criticism of AIRMAIL-style ARQ — exactly what Snoop
  // fixes). Some end-to-end retransmission therefore persists.
  EXPECT_LT(sender.connection()->stats().bytes_retransmitted, 15'000u);
  EXPECT_GT(sender.connection()->stats().fast_retransmits +
                sender.connection()->stats().retransmit_timeouts,
            0u);
}

TEST_F(LossyBaselinesTest, ArqImprovesThroughputOverPlainTcp) {
  // Same seed, same loss; with and without the ARQ pair.
  auto run = [&](bool with_arq) -> sim::TimePoint {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.08;
    cfg.seed = 77;
    core::WirelessScenario sc(cfg);
    std::unique_ptr<ArqEndpoint> a;
    std::unique_ptr<ArqEndpoint> b;
    if (with_arq) {
      a = std::make_unique<ArqEndpoint>(&sc.gateway(), sc.mobile_addr(),
                                        ArqEndpoint::WrapMode::kTowardPeerAddress);
      b = std::make_unique<ArqEndpoint>(&sc.mobile_host(), sc.gateway_wireless_addr(),
                                        ArqEndpoint::WrapMode::kEverything);
    }
    apps::BulkSink sink(&sc.mobile_host(), 80);
    apps::BulkSender sender(&sc.wired_host(), sc.mobile_addr(), 80,
                            apps::PatternPayload(200'000));
    for (int step = 0; step < 6000 && !sender.finished(); ++step) {
      sc.sim().RunFor(100 * sim::kMillisecond);
    }
    EXPECT_TRUE(sender.finished());
    return sender.finished_at() - sender.started_at();
  };
  const sim::TimePoint plain = run(false);
  const sim::TimePoint with_arq = run(true);
  EXPECT_LT(with_arq, plain);
}

TEST_F(LossyBaselinesTest, ArqSuppressesDuplicateDeliveries) {
  ArqEndpoint gateway_arq(&s().gateway(), s().mobile_addr(),
                          ArqEndpoint::WrapMode::kTowardPeerAddress);
  ArqEndpoint mobile_arq(&s().mobile_host(), s().gateway_wireless_addr(),
                         ArqEndpoint::WrapMode::kEverything);
  apps::BulkSink sink(&s().mobile_host(), 80);
  apps::BulkSender sender(&s().wired_host(), s().mobile_addr(), 80,
                          apps::PatternPayload(50'000));
  s().sim().RunFor(120 * sim::kSecond);
  ASSERT_EQ(sink.bytes_received(), 50'000u);
  // Lost ACKs cause retransmissions whose duplicates must be filtered.
  EXPECT_GT(mobile_arq.stats().duplicates_suppressed + gateway_arq.stats().duplicates_suppressed,
            0u);
}

}  // namespace
}  // namespace comma::baselines

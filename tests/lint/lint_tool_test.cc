// In-process tests for comma-lint (tools/lint, docs/static-analysis.md).
//
// The fixture corpus under tests/lint/testdata is a miniature src/ tree with
// one deliberately-bad file per rule plus a clean file; the suite asserts
// the exact clang-style diagnostics, the NOLINT contract (a bare NOLINT
// does not silence comma-lint), the --fix rewrites against golden files,
// and the baseline round-trip. The real tree run never sees the corpus:
// the runner skips directories named `testdata`.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/index/symbol_index.h"
#include "tools/lint/runner.h"
#include "tools/lint/rules.h"
#include "tools/lint/sarif.h"
#include "tools/lint/scan_pool.h"
#include "tools/lint/source.h"

namespace comma::lint {
namespace {

namespace fs = std::filesystem;

std::string Testdata() { return COMMA_LINT_TESTDATA; }

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LintResult RunOver(const std::string& root, LintOptions opts = {}) {
  opts.root = root;
  if (opts.paths.empty()) {
    opts.paths = {"src"};  // The corpus has no tests/ subtree.
  }
  LintResult result;
  std::string error;
  EXPECT_TRUE(RunLint(opts, &result, &error)) << error;
  return result;
}

std::vector<std::string> Rendered(const Diagnostics& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) {
    out.push_back(d.Render());
  }
  return out;
}

// The full corpus, every rule, exact file:line:col and message.
TEST(CommaLint, FixtureCorpusExactDiagnostics) {
  const LintResult result = RunOver(Testdata());
  const std::vector<std::string> expected = {
      "src/filters/bad_filter.cc:12:7: error: filter class 'DeafFilter' overrides neither In() "
      "nor Out(); a pool filter must declare its pass direction [comma-filter-contract]",
      "src/filters/bad_filter.cc:18:22: error: filter registered as 'mis-named' but class "
      "'MisnamedFilter' constructs Filter(\"misnamed\"); by-name lookup (FindFilterOnKey, "
      "report) would miss it [comma-filter-contract]",
      "src/filters/bad_filter.cc:20:22: error: filter 'ghost' registers class 'GhostFilter' but "
      "no such class is defined under src/filters [comma-filter-contract]",
      "src/net/bad_buffer.cc:19:3: error: field 'tail_' retains a pointer into 'pkt's payload; "
      "the buffer can be reallocated or requeued after this call returns [comma-buffer-lifetime]",
      "src/net/bad_buffer.cc:26:10: error: 'head' points into 'pkt's payload (taken at line 24) "
      "but 'pkt' was set_payload()'d at line 25; the buffer may have been reallocated or handed "
      "away [comma-buffer-lifetime]",
      "src/net/bad_buffer.cc:33:7: error: 'head' points into 'pkt's payload (taken at line 31) "
      "but 'pkt' was std::move()d away at line 32; the buffer may have been reallocated or "
      "handed away [comma-buffer-lifetime]",
      "src/net/bad_restricted.cc:4:10: error: forbidden include of "
      "\"src/obs/metric_registry.h\": only the allowlisted headers of src/obs may be included "
      "from src/net [comma-include-layering]",
      "src/obs/bad_metric.cc:7:24: error: metric name \"SP.packets\" is outside the EEM-bridged "
      "namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be unwatchable "
      "from Kati [comma-metric-name-style]",
      "src/obs/bad_metric.cc:8:22: error: metric name \"kati.decision_loops\" is outside the "
      "EEM-bridged namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be "
      "unwatchable from Kati [comma-metric-name-style]",
      "src/obs/bad_metric.cc:9:26: error: metric name \"eem.Handoff.Latency\" is outside the "
      "EEM-bridged namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be "
      "unwatchable from Kati [comma-metric-name-style]",
      "src/obs/bad_metric_dup.cc:17:22: error: metric 'sp.proxy.rebinds' is registered as a "
      "gauge here but as a counter in src/obs/bad_metric_dup.cc:11; the registry interns per "
      "family, so this silently forks the metric [comma-metric-consistency]",
      "src/obs/bad_metric_dup.cc:19:33: error: metric 'sp.proxy.queue_depth' has a second "
      "Register*Source site; source registrations replace, so this one silently wins over the "
      "earlier site [comma-metric-consistency]",
      "src/obs/bad_metric_dup.cc:23:26: error: watch example references metric "
      "'sp.proxy.ghost_metric', which no src/ registration site interns (orphan) "
      "[comma-metric-consistency]",
      "src/obs/bad_mutex.cc:12:14: error: mutex 'mu_' in class 'SilentRegistry' guards nothing; "
      "annotate the members it protects with COMMA_GUARDED_BY(mu_) "
      "(src/util/thread_annotations.h) [comma-mutex-annotation]",
      "src/obs/bad_mutex.cc:13:7: error: field 'hits_locked_' in class 'SilentRegistry' claims "
      "lock-protected state by its *_locked_ name but carries no COMMA_GUARDED_BY annotation "
      "[comma-mutex-annotation]",
      "src/proxy/bad_blob.cc:41:14: error: SkewWidth checkpoint blob desync at step 2: import "
      "reads u32 at loop depth 0 but export writes u16 at loop depth 0 "
      "[comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_blob.cc:54:15: error: SkewMagic::ImportState expects magic kSkewMagicOld "
      "but ExportState writes kSkewMagicNew [comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_blob.cc:67:15: error: SkewVersion::ImportState checks version "
      "kSkewVerV1Version but ExportState writes kSkewVerV2Version "
      "[comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_blob.cc:86:22: error: SkewLoop checkpoint blob desync at step 3: import "
      "reads u64 at loop depth 0 but export writes u64 at loop depth 1 "
      "[comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_blob.cc:98:16: error: SkewTail::ImportState stops after 2 field(s) but "
      "ExportState also writes u32 at step 3 [comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_blob.cc:105:14: error: Orphan::ExportState serializes a checkpoint blob "
      "but the ImportState counterpart is missing [comma-checkpoint-blob-symmetry]",
      "src/proxy/bad_cast.cc:8:10: error: reinterpret_cast outside src/util/bytes.*; route "
      "byte/text bridging through comma::util::AsBytePtr/AsCharPtr [comma-bytes-raw-cast]",
      "src/proxy/bad_cast.cc:12:10: error: reinterpret_cast outside src/util/bytes.*; route "
      "byte/text bridging through comma::util::AsBytePtr/AsCharPtr [comma-bytes-raw-cast]",
      "src/proxy/bad_cast.cc:16:3: error: raw memcpy on a wire buffer; use "
      "util::ByteReader/ByteWriter or the util::bytes copy helpers [comma-bytes-raw-cast]",
      "src/proxy/bad_dcheck.cc:6:16: error: '--' inside COMMA_DCHECK mutates state the release "
      "build never executes; hoist the side effect out of the check [comma-check-side-effect]",
      "src/proxy/bad_guarded.cc:34:3: error: field 'flushed_' is guarded by 'ledger_mu_' "
      "(COMMA_GUARDED_BY) but the lock is not held on every path to this access "
      "[comma-guarded-field-flow]",
      "src/proxy/bad_guarded.cc:47:3: error: field 'flushed_' is guarded by 'ledger_mu_' "
      "(COMMA_GUARDED_BY) but the lock is not held on every path to this access "
      "[comma-guarded-field-flow]",
      "src/proxy/bad_guarded.cc:52:10: error: field 'posted_' is guarded by 'ledger_mu_' "
      "(COMMA_GUARDED_BY) but the lock is not held on every path to this access "
      "[comma-guarded-field-flow]",
      "src/proxy/bad_lock_order.cc:15:37: error: acquires 'table_mu_' (rank 10) while 'row_mu_' "
      "(rank 20) is held; the DESIGN.md lock hierarchy orders acquisitions by increasing rank "
      "[comma-lock-order]",
      "src/proxy/bad_lock_order.cc:19:37: error: acquires 'rogue_mu_', which is not in the "
      "DESIGN.md lock-hierarchy table; every lock must be ranked before it can be taken "
      "[comma-lock-order]",
      "src/proxy/bad_lock_order.cc:22:54: error: declared to acquire 'table_mu_' (rank 10) "
      "while requiring 'row_mu_' (rank 20); the DESIGN.md lock hierarchy orders acquisitions "
      "by increasing rank [comma-lock-order]",
      "src/proxy/bad_nolint.cc:5:28: error: comma-lint suppression is missing its reason; write "
      "`NOLINT(<rule>): <why this site is exempt>` [comma-nolint-reason]",
      "src/reassembly/bad_http.cc:9:19: error: raw '<' on TCP sequence values 'frontier' and "
      "'seg_seq' breaks at the 2^32 wrap; use comma::tcp::SeqLt [comma-seq-raw-compare]",
      "src/reassembly/bad_http.cc:13:18: error: raw '-' on TCP sequence values 'seg_end' and "
      "'frontier' breaks at the 2^32 wrap; use comma::tcp::SeqDiff [comma-seq-raw-compare]",
      "src/reassembly/bad_http.cc:17:3: error: COMMA_DCHECK_LT on TCP sequence values 'frontier' "
      "and 'fin_seq' breaks at the 2^32 wrap; assert comma::tcp::SeqLt(...) instead "
      "[comma-seq-raw-compare]",
      "src/sim/bad_nondet.cc:10:31: error: 'std::random_device' taps OS entropy and breaks "
      "replay; seed a sim::Random from the scenario config [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:11:28: error: 'rand()' draws from the unseeded global RNG; draw "
      "from the scenario's seeded sim::Random instead [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:12:35: error: wall-clock read via std::chrono::steady_clock in "
      "deterministic code; event time is sim::Simulator::Now() [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:13:23: error: wall-clock call 'time()' in deterministic code; "
      "event time is sim::Simulator::Now() [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:14:34: error: 'getenv()' makes behaviour host-dependent; thread "
      "configuration through the scenario/config structs [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:15:6: error: pointer-keyed std::unordered_map iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/sim/bad_shard.cc:15:6: error: pointer-keyed std::unordered_map iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/sim/bad_shard.cc:16:6: error: pointer-keyed std::unordered_set iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/tcp/bad_include.cc:4:10: error: forbidden include of \"src/filters/ttsf_filter.h\": "
      "src/tcp sits below src/filters in the DESIGN.md layer DAG [comma-include-layering]",
      "src/tcp/bad_include.cc:5:10: error: forbidden include of \"src/obs/metric_registry.h\": "
      "src/tcp sits below src/obs in the DESIGN.md layer DAG [comma-include-layering]",
      "src/tcp/bad_seq.cc:7:18: error: raw '<' on TCP sequence values 'snd_una' and 'snd_nxt' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqLt [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:11:18: error: raw '-' on TCP sequence values 'end_seq' and 'rcv_nxt' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqDiff [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:19:17: error: raw '>' on TCP sequence values 'seq_lo' and 'seq_hi' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqGt [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:23:3: error: COMMA_DCHECK_LT on TCP sequence values 'pkt_seq' and "
      "'pkt_ack' breaks at the 2^32 wrap; assert comma::tcp::SeqLt(...) instead "
      "[comma-seq-raw-compare]",
  };
  EXPECT_EQ(Rendered(result.findings), expected);
  EXPECT_TRUE(result.baselined.empty());
}

// The clean fixture — sanctioned idioms only — contributes nothing.
TEST(CommaLint, CleanFixtureHasNoFindings) {
  const LintResult result = RunOver(Testdata());
  for (const Diagnostic& d : result.findings) {
    EXPECT_NE(d.file, "src/proxy/clean.cc") << d.Render();
  }
}

// --rule restricts the run to the named rules.
TEST(CommaLint, RuleSelectionRestrictsFindings) {
  LintOptions opts;
  opts.rules = {"seq-raw-compare"};
  const LintResult result = RunOver(Testdata(), opts);
  ASSERT_EQ(result.findings.size(), 7u);  // 4 in bad_seq.cc + 3 in bad_http.cc.
  for (const Diagnostic& d : result.findings) {
    EXPECT_EQ(d.rule, "seq-raw-compare");
  }

  LintOptions bad;
  bad.root = Testdata();
  bad.paths = {"src"};
  bad.rules = {"no-such-rule"};
  LintResult ignored;
  std::string error;
  EXPECT_FALSE(RunLint(bad, &ignored, &error));
  EXPECT_NE(error.find("unknown rule name: no-such-rule"), std::string::npos) << error;
  // A typo'd --rule prints the whole catalog so the user can correct it
  // without a second command.
  EXPECT_NE(error.find("available rules:"), std::string::npos) << error;
  EXPECT_NE(error.find("comma-seq-raw-compare"), std::string::npos) << error;
  EXPECT_NE(error.find("comma-buffer-lifetime"), std::string::npos) << error;
}

// The NOLINT contract: the rule must be named; a bare NOLINT (clang-tidy
// habit) does not silence comma-lint. Both spellings of the rule work, and
// NOLINTNEXTLINE anchors to the following line.
TEST(CommaLint, SuppressionRequiresExplicitRuleName) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/tcp/fixture.cc", body));
    Diagnostics out;
    MakeSeqRawCompareRule()->Check(project, &out);
    return out.size();
  };
  const std::string stmt = "bool F(uint32_t seq_lo, uint32_t seq_hi) { return seq_lo < seq_hi; }";
  EXPECT_EQ(findings_in(stmt + "\n"), 1u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT\n"), 1u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(comma-seq-raw-compare)\n"), 0u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(seq-raw-compare)\n"), 0u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare)\n" + stmt + "\n"), 0u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(comma-bytes-raw-cast)\n"), 1u);  // Wrong rule.
}

// --fix rewrites the mechanical rules to the seq.h / bytes.h helpers and
// inserts the required include; suppressed sites and non-fixable findings
// (memcpy, macro comparisons) are left alone.
TEST(CommaLint, FixRewritesMatchGoldenFiles) {
  const fs::path tmp = fs::path(::testing::TempDir()) / "comma_lint_fix";
  fs::remove_all(tmp);
  fs::create_directories(tmp);
  fs::copy(fs::path(Testdata()) / "src", tmp / "src", fs::copy_options::recursive);

  LintOptions opts;
  opts.apply_fixes = true;
  const LintResult result = RunOver(tmp.string(), opts);
  EXPECT_EQ(result.fixes_applied, 7);  // 3 in bad_seq.cc + 2 in bad_cast.cc + 2 in bad_http.cc.
  const std::vector<std::string> expected_fixed = {"src/proxy/bad_cast.cc",
                                                   "src/reassembly/bad_http.cc",
                                                   "src/tcp/bad_seq.cc"};
  EXPECT_EQ(result.fixed_files, expected_fixed);

  const fs::path golden = fs::path(Testdata()) / "golden";
  EXPECT_EQ(ReadFile(tmp / "src/tcp/bad_seq.cc"), ReadFile(golden / "bad_seq.cc.golden"));
  EXPECT_EQ(ReadFile(tmp / "src/proxy/bad_cast.cc"), ReadFile(golden / "bad_cast.cc.golden"));
  EXPECT_EQ(ReadFile(tmp / "src/reassembly/bad_http.cc"),
            ReadFile(golden / "bad_http.cc.golden"));
  // Non-fixable rules leave their files untouched.
  EXPECT_EQ(ReadFile(tmp / "src/proxy/bad_dcheck.cc"),
            ReadFile(fs::path(Testdata()) / "src/proxy/bad_dcheck.cc"));

  // The rewritten tree keeps only the non-mechanical findings.
  const LintResult refixed = RunOver(tmp.string());
  for (const Diagnostic& d : refixed.findings) {
    EXPECT_TRUE(d.rule != "seq-raw-compare" || d.file != "src/tcp/bad_seq.cc" ||
                d.message.find("COMMA_DCHECK_LT") != std::string::npos)
        << d.Render();
  }
  fs::remove_all(tmp);
}

// --write-baseline grandfathers the current findings; a second run reports
// them as baselined, not new.
TEST(CommaLint, BaselineRoundTrip) {
  const fs::path baseline = fs::path(::testing::TempDir()) / "comma_lint_baseline.txt";
  fs::remove(baseline);

  LintOptions first;
  first.baseline_path = baseline.string();
  first.write_baseline = true;
  const LintResult before = RunOver(Testdata(), first);
  EXPECT_FALSE(before.findings.empty());
  EXPECT_TRUE(before.baselined.empty());

  LintOptions second;
  second.baseline_path = baseline.string();
  const LintResult after = RunOver(Testdata(), second);
  EXPECT_TRUE(after.findings.empty())
      << (after.findings.empty() ? "" : after.findings.front().Render());
  EXPECT_EQ(after.baselined.size(), before.findings.size());
  fs::remove(baseline);
}

// The catalog: ten rules, the two mechanical ones marked fixable, and the
// instantiation-free name list (BuiltinRuleNames) in lockstep.
TEST(CommaLint, BuiltinRuleCatalog) {
  const std::vector<RulePtr> rules = BuiltinRules();
  std::vector<std::string> names;
  std::vector<std::string> fixable;
  for (const RulePtr& r : rules) {
    names.emplace_back(r->name());
    EXPECT_FALSE(r->description().empty());
    if (r->fixable()) {
      fixable.emplace_back(r->name());
    }
  }
  const std::vector<std::string> expected_names = {
      "seq-raw-compare",    "bytes-raw-cast",
      "check-side-effect",  "metric-name-style",
      "include-layering",   "filter-contract",
      "mutex-annotation",   "nondeterminism-ban",
      "lock-order",         "nolint-reason",
      "checkpoint-blob-symmetry", "guarded-field-flow",
      "metric-consistency", "buffer-lifetime",
  };
  EXPECT_EQ(names, expected_names);
  EXPECT_EQ(fixable, (std::vector<std::string>{"seq-raw-compare", "bytes-raw-cast"}));
  std::vector<std::string> listed;
  for (std::string_view n : BuiltinRuleNames()) {
    listed.emplace_back(n);
  }
  EXPECT_EQ(listed, expected_names);
}

// A scan fanned out over worker threads produces byte-for-byte the same
// result as the serial scan: files land in fixed slots, rules run after
// the barrier.
TEST(CommaLint, ParallelScanMatchesSerial) {
  const LintResult serial = RunOver(Testdata());
  LintOptions opts;
  opts.jobs = 4;
  const LintResult parallel = RunOver(Testdata(), opts);
  EXPECT_EQ(Rendered(parallel.findings), Rendered(serial.findings));
  EXPECT_EQ(parallel.files_scanned, serial.files_scanned);

  // Oversubscribed: more workers than files. Extra workers find the cursor
  // exhausted and exit; the two-pass runner (index, then rules) is
  // unaffected because both passes run after the load barrier.
  LintOptions many;
  many.jobs = 64;
  const LintResult oversub = RunOver(Testdata(), many);
  EXPECT_EQ(Rendered(oversub.findings), Rendered(serial.findings));
}

// ScanPool contract at the edges: an empty work list, more workers than
// files, and an unreadable file (reported by name, run fails cleanly).
TEST(CommaLint, ScanPoolEdgeCases) {
  const fs::path root = Testdata();
  std::vector<LintFile> out;
  std::string error;
  EXPECT_TRUE(ScanPool::LoadAll(root, {}, 8, &out, &error)) << error;
  EXPECT_TRUE(out.empty());

  const std::vector<std::string> two = {"src/tcp/bad_seq.cc", "src/proxy/clean.cc"};
  EXPECT_TRUE(ScanPool::LoadAll(root, two, 64, &out, &error)) << error;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].path, "src/tcp/bad_seq.cc");  // Fixed slots, input order.
  EXPECT_EQ(out[1].path, "src/proxy/clean.cc");
  EXPECT_FALSE(out[0].tokens.empty());
  EXPECT_FALSE(out[1].content.empty());

  const std::vector<std::string> missing = {"src/tcp/bad_seq.cc", "src/no_such_file.cc"};
  EXPECT_FALSE(ScanPool::LoadAll(root, missing, 4, &out, &error));
  EXPECT_NE(error.find("src/no_such_file.cc"), std::string::npos) << error;
}

// mutex-annotation in isolation: an uncited mutex is a finding, citing it
// from any COMMA_GUARDED_BY member clears it.
TEST(CommaLint, MutexAnnotationCitedMutexIsClean) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/obs/fixture.h", body));
    Diagnostics out;
    MakeMutexAnnotationRule()->Check(project, &out);
    return out.size();
  };
  const std::string unguarded =
      "class R {\n"
      "  std::mutex mu_;\n"
      "  int hits_ = 0;\n"
      "};\n";
  const std::string guarded =
      "class R {\n"
      "  std::mutex mu_;\n"
      "  int hits_ COMMA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_EQ(findings_in(unguarded), 1u);
  EXPECT_EQ(findings_in(guarded), 0u);
}

// The nondeterminism allowlist: a table entry (file, api) sanctions that
// one API in that one file, like an include-layering edge; "*" sanctions
// the whole file. Other files stay banned.
TEST(CommaLint, NondeterminismAllowlistIsPerFileAndApi) {
  const auto findings_with = [](std::vector<NondetAllowance> allow) {
    Project project;
    project.files.push_back(
        MakeLintFile("src/sim/entropy.cc", "unsigned S() { return std::random_device{}(); }\n"));
    project.files.push_back(
        MakeLintFile("src/sim/other.cc", "unsigned T() { return std::random_device{}(); }\n"));
    Diagnostics out;
    MakeNondeterminismRule(std::move(allow))->Check(project, &out);
    return out.size();
  };
  EXPECT_EQ(findings_with({}), 2u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "random_device"}}), 1u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "*"}}), 1u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "rand"}}), 2u);  // Wrong API.
}

// The lock-order hierarchy round-trips from the DESIGN.md table: ranks
// declared there decide which nestings are findings, and a lock missing
// from the table cannot be taken.
TEST(CommaLint, LockOrderRoundTripsFromDesignTable) {
  const std::string design =
      "# Fixture\n"
      "### Lock hierarchy\n"
      "\n"
      "| Rank | Lock | Owner |\n"
      "|------|------|-------|\n"
      "| 10 | `outer_mu_` | A |\n"
      "| 20 | `inner_mu_` | B |\n";
  const auto findings_in = [&](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/obs/fixture.cc", body));
    project.design = MakeLintFile("DESIGN.md", design);
    project.has_design = true;
    Diagnostics out;
    MakeLockOrderRule()->Check(project, &out);
    return out;
  };
  const std::string good =
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(outer_mu_);\n"
      "  std::lock_guard<std::mutex> b(inner_mu_);\n"
      "}\n";
  const std::string inverted =
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(inner_mu_);\n"
      "  std::lock_guard<std::mutex> b(outer_mu_);\n"
      "}\n";
  const std::string unranked = "void F() { std::lock_guard<std::mutex> a(stray_mu_); }\n";
  EXPECT_TRUE(findings_in(good).empty());
  ASSERT_EQ(findings_in(inverted).size(), 1u);
  EXPECT_NE(findings_in(inverted)[0].message.find("rank 10"), std::string::npos);
  ASSERT_EQ(findings_in(unranked).size(), 1u);
  EXPECT_NE(findings_in(unranked)[0].message.find("not in the DESIGN.md"), std::string::npos);

  // Without a hierarchy table the rule has nothing to enforce.
  Project no_design;
  no_design.files.push_back(MakeLintFile("src/obs/fixture.cc", inverted));
  Diagnostics out;
  MakeLockOrderRule()->Check(no_design, &out);
  EXPECT_TRUE(out.empty());
}

// The suppression-reason contract: a comma-rule NOLINT without a trailing
// `: reason` is a finding; reasons and third-party suppressions are not.
TEST(CommaLint, NolintReasonRequiredOnCommaSuppressions) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/tcp/fixture.cc", body));
    Diagnostics out;
    MakeNolintReasonRule()->Check(project, &out);
    return out.size();
  };
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-seq-raw-compare)\n"), 1u);
  EXPECT_EQ(findings_in("int x;  // NOLINT(seq-raw-compare)\n"), 1u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare)\nint x;\n"), 1u);
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-seq-raw-compare): event seq, not TCP\n"), 0u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare): event seq\nint x;\n"), 0u);
  // Third-party (clang-tidy) suppressions are not comma-lint's business.
  EXPECT_EQ(findings_in("int x;  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)\n"), 0u);
  // Bare NOLINT never silences comma-lint, so no reason is demanded either.
  EXPECT_EQ(findings_in("int x;  // NOLINT\n"), 0u);
  // A bare suppression of this very rule does not silence it.
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-nolint-reason)\n"), 1u);
}

// The declared-type exemption: a uint64_t `seq` (the simulator's event
// tie-breaker) is not a TCP sequence number.
TEST(CommaLint, DeclaredTypeExemptsNonUint32Sequences) {
  Project project;
  project.files.push_back(MakeLintFile(
      "src/sim/fixture.h",
      "struct Ev { uint64_t event_seq; };\n"
      "bool Before(uint64_t event_seq, uint64_t other_seq) { return event_seq < other_seq; }\n"));
  Diagnostics out;
  MakeSeqRawCompareRule()->Check(project, &out);
  EXPECT_TRUE(out.empty()) << out.front().Render();
}

// checkpoint-blob-symmetry over the real tree: desyncing the first read of
// each of the eight checkpoint formats (TTSF, SNOP, TDRP, TCMP, TDEC,
// WSIZ, HRWR, HTYP) is caught and attributed to its class; the pristine
// tree is clean. COMMA_LINT_SRCROOT points at the repository root.
TEST(CommaLint, RealTreeBlobFormatDesyncsAreCaught) {
  const fs::path srcroot = COMMA_LINT_SRCROOT;
  const fs::path tmp = fs::path(::testing::TempDir()) / "comma_lint_blob";
  fs::remove_all(tmp);
  fs::create_directories(tmp / "src");
  fs::copy(srcroot / "src/filters", tmp / "src/filters", fs::copy_options::recursive);

  LintOptions opts;
  opts.rules = {"checkpoint-blob-symmetry"};
  const LintResult pristine = RunOver(tmp.string(), opts);
  EXPECT_TRUE(pristine.findings.empty())
      << (pristine.findings.empty() ? "" : pristine.findings.front().Render());

  // Widen (or wrap) the width of the first ReadUxx in each ImportState.
  const std::vector<std::string> classes = {
      "TtsfFilter",        "SnoopFilter", "TdropFilter",    "TcompressFilter",
      "TdecompressFilter", "WsizeFilter", "HrewriteFilter", "HtypeFilter"};
  const std::map<std::string, std::string> bump = {
      {"8", "16"}, {"16", "32"}, {"32", "64"}, {"64", "8"}};
  int desynced = 0;
  for (const auto& entry : fs::recursive_directory_iterator(tmp / "src/filters")) {
    if (!entry.is_regular_file() || entry.path().extension() != ".cc") {
      continue;
    }
    std::string body = ReadFile(entry.path());
    bool changed = false;
    for (const std::string& cls : classes) {
      const size_t fn = body.find("bool " + cls + "::ImportState");
      if (fn == std::string::npos) {
        continue;
      }
      const size_t read = body.find("ReadU", fn);
      ASSERT_NE(read, std::string::npos) << cls;
      size_t end = read + 5;
      while (end < body.size() && std::isdigit(static_cast<unsigned char>(body[end]))) {
        ++end;
      }
      body.replace(read + 5, end - (read + 5), bump.at(body.substr(read + 5, end - (read + 5))));
      changed = true;
      ++desynced;
    }
    if (changed) {
      std::ofstream rewrite(entry.path(), std::ios::trunc | std::ios::binary);
      rewrite << body;
    }
  }
  ASSERT_EQ(desynced, 8);

  const LintResult skewed = RunOver(tmp.string(), opts);
  EXPECT_EQ(skewed.findings.size(), 8u);
  for (const std::string& cls : classes) {
    bool named = false;
    for (const Diagnostic& d : skewed.findings) {
      named = named || d.message.find(cls) != std::string::npos;
    }
    EXPECT_TRUE(named) << cls << " desync was not reported";
  }
  fs::remove_all(tmp);
}

// The pass-1 index cache: a cold run misses for every file, the warm run
// hits for every file, and the findings are byte-identical.
TEST(CommaLint, IndexCacheWarmRunMatchesCold) {
  const fs::path cache = fs::path(::testing::TempDir()) / "comma_lint_index_cache.bin";
  fs::remove(cache);
  LintOptions opts;
  opts.index_cache_path = cache.string();
  const LintResult cold = RunOver(Testdata(), opts);
  EXPECT_EQ(cold.index_cache_hits, 0);
  EXPECT_EQ(cold.index_cache_misses, cold.files_scanned);
  const LintResult warm = RunOver(Testdata(), opts);
  EXPECT_EQ(warm.index_cache_hits, warm.files_scanned);
  EXPECT_EQ(warm.index_cache_misses, 0);
  EXPECT_EQ(Rendered(warm.findings), Rendered(cold.findings));
  fs::remove(cache);
}

// SARIF output: schema versioned 2.1.0, the full rule catalog (including
// rules with zero findings), one result per finding, escaped messages.
TEST(CommaLint, SarifRenderCarriesCatalogAndFindings) {
  const LintResult result = RunOver(Testdata());
  const std::string sarif = RenderSarif(result);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"comma-lint\""), std::string::npos);
  const auto count = [&sarif](const std::string& needle) {
    size_t n = 0;
    for (size_t at = sarif.find(needle); at != std::string::npos;
         at = sarif.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"id\": \"comma-"), BuiltinRules().size());
  EXPECT_EQ(count("\"ruleId\": "), result.findings.size());
  EXPECT_NE(sarif.find("\"ruleId\": \"comma-checkpoint-blob-symmetry\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": "), std::string::npos);
  // Messages embed double quotes (metric names); they must arrive escaped.
  EXPECT_NE(sarif.find("\\\"SP.packets\\\""), std::string::npos);
}

// --counts-md ordering: one row per active rule, sorted by rule id so the
// table is diffable run to run whatever the catalog order is.
TEST(CommaLint, CountsMarkdownSortsByRuleId) {
  const LintResult result = RunOver(Testdata());
  const std::string md = RenderCountsMarkdown(result);
  std::istringstream in(md);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "| rule | findings | baselined |");
  std::getline(in, line);  // The |---| separator.
  std::vector<std::string> rules;
  while (std::getline(in, line)) {
    const size_t open = line.find("comma-");
    ASSERT_NE(open, std::string::npos) << line;
    rules.push_back(line.substr(open, line.find(' ', open) - open));
  }
  EXPECT_EQ(rules.size(), BuiltinRules().size());
  EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end()));
}

// --prune-baseline: entries for fixed findings are reported stale and then
// dropped; entries still being consumed survive verbatim.
TEST(CommaLint, PruneBaselineDropsStaleEntries) {
  const fs::path tmp = fs::path(::testing::TempDir()) / "comma_lint_prune";
  fs::remove_all(tmp);
  fs::create_directories(tmp);
  fs::copy(fs::path(Testdata()) / "src", tmp / "src", fs::copy_options::recursive);
  fs::copy_file(fs::path(Testdata()) / "DESIGN.md", tmp / "DESIGN.md");
  const fs::path baseline = tmp / "baseline.txt";

  LintOptions write;
  write.baseline_path = baseline.string();
  write.write_baseline = true;
  const LintResult before = RunOver(tmp.string(), write);
  ASSERT_FALSE(before.findings.empty());

  // "Fix" one file by deleting it: its baseline entries go stale.
  fs::remove(tmp / "src/tcp/bad_seq.cc");

  LintOptions prune;
  prune.baseline_path = baseline.string();
  prune.prune_baseline = true;
  const LintResult pruned = RunOver(tmp.string(), prune);
  EXPECT_TRUE(pruned.findings.empty());
  EXPECT_EQ(pruned.stale_baseline, 4);  // bad_seq.cc carried four entries.
  EXPECT_EQ(ReadFile(baseline).find("bad_seq"), std::string::npos);

  LintOptions reread;
  reread.baseline_path = baseline.string();
  const LintResult after = RunOver(tmp.string(), reread);
  EXPECT_TRUE(after.findings.empty());
  EXPECT_EQ(after.stale_baseline, 0);
  EXPECT_EQ(after.baselined.size(), before.findings.size() - 4);
  fs::remove_all(tmp);
}

// COMMA_REQUIRES on the in-class declaration seeds the entry lock set, so
// a helper documenting its precondition accesses guarded fields cleanly;
// without the annotation the same body is a finding.
TEST(CommaLint, GuardedFlowHonorsRequiresAnnotation) {
  const auto findings_in = [](const std::string& decl) {
    Project project;
    project.files.push_back(MakeLintFile(
        "src/obs/fixture.cc",
        "class C {\n"
        " public:\n"
        "  void Bump() " + decl + ";\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  int n_ COMMA_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "void C::Bump() { n_ += 1; }\n"));
    std::vector<FileIndex> per_file;
    per_file.push_back(IndexFile(project.files.back()));
    project.index = ProjectIndex::Build(per_file);
    Diagnostics out;
    MakeGuardedFlowRule()->Check(project, &out);
    return out.size();
  };
  EXPECT_EQ(findings_in(""), 1u);
  EXPECT_EQ(findings_in("COMMA_REQUIRES(mu_)"), 0u);
}

}  // namespace
}  // namespace comma::lint

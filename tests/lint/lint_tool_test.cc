// In-process tests for comma-lint (tools/lint, docs/static-analysis.md).
//
// The fixture corpus under tests/lint/testdata is a miniature src/ tree with
// one deliberately-bad file per rule plus a clean file; the suite asserts
// the exact clang-style diagnostics, the NOLINT contract (a bare NOLINT
// does not silence comma-lint), the --fix rewrites against golden files,
// and the baseline round-trip. The real tree run never sees the corpus:
// the runner skips directories named `testdata`.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/lint/runner.h"
#include "tools/lint/rules.h"
#include "tools/lint/source.h"

namespace comma::lint {
namespace {

namespace fs = std::filesystem;

std::string Testdata() { return COMMA_LINT_TESTDATA; }

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

LintResult RunOver(const std::string& root, LintOptions opts = {}) {
  opts.root = root;
  if (opts.paths.empty()) {
    opts.paths = {"src"};  // The corpus has no tests/ subtree.
  }
  LintResult result;
  std::string error;
  EXPECT_TRUE(RunLint(opts, &result, &error)) << error;
  return result;
}

std::vector<std::string> Rendered(const Diagnostics& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) {
    out.push_back(d.Render());
  }
  return out;
}

// The full corpus, every rule, exact file:line:col and message.
TEST(CommaLint, FixtureCorpusExactDiagnostics) {
  const LintResult result = RunOver(Testdata());
  const std::vector<std::string> expected = {
      "src/filters/bad_filter.cc:12:7: error: filter class 'DeafFilter' overrides neither In() "
      "nor Out(); a pool filter must declare its pass direction [comma-filter-contract]",
      "src/filters/bad_filter.cc:18:22: error: filter registered as 'mis-named' but class "
      "'MisnamedFilter' constructs Filter(\"misnamed\"); by-name lookup (FindFilterOnKey, "
      "report) would miss it [comma-filter-contract]",
      "src/filters/bad_filter.cc:20:22: error: filter 'ghost' registers class 'GhostFilter' but "
      "no such class is defined under src/filters [comma-filter-contract]",
      "src/net/bad_restricted.cc:4:10: error: forbidden include of "
      "\"src/obs/metric_registry.h\": only the allowlisted headers of src/obs may be included "
      "from src/net [comma-include-layering]",
      "src/obs/bad_metric.cc:7:24: error: metric name \"SP.packets\" is outside the EEM-bridged "
      "namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be unwatchable "
      "from Kati [comma-metric-name-style]",
      "src/obs/bad_metric.cc:8:22: error: metric name \"kati.decision_loops\" is outside the "
      "EEM-bridged namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be "
      "unwatchable from Kati [comma-metric-name-style]",
      "src/obs/bad_metric.cc:9:26: error: metric name \"eem.Handoff.Latency\" is outside the "
      "EEM-bridged namespace ^(sp|ttsf|tcp|eem|trace|mip|sim|http|dns).[a-z0-9_.]+$ and would be "
      "unwatchable from Kati [comma-metric-name-style]",
      "src/obs/bad_mutex.cc:12:14: error: mutex 'mu_' in class 'SilentRegistry' guards nothing; "
      "annotate the members it protects with COMMA_GUARDED_BY(mu_) "
      "(src/util/thread_annotations.h) [comma-mutex-annotation]",
      "src/obs/bad_mutex.cc:13:7: error: field 'hits_locked_' in class 'SilentRegistry' claims "
      "lock-protected state by its *_locked_ name but carries no COMMA_GUARDED_BY annotation "
      "[comma-mutex-annotation]",
      "src/proxy/bad_cast.cc:8:10: error: reinterpret_cast outside src/util/bytes.*; route "
      "byte/text bridging through comma::util::AsBytePtr/AsCharPtr [comma-bytes-raw-cast]",
      "src/proxy/bad_cast.cc:12:10: error: reinterpret_cast outside src/util/bytes.*; route "
      "byte/text bridging through comma::util::AsBytePtr/AsCharPtr [comma-bytes-raw-cast]",
      "src/proxy/bad_cast.cc:16:3: error: raw memcpy on a wire buffer; use "
      "util::ByteReader/ByteWriter or the util::bytes copy helpers [comma-bytes-raw-cast]",
      "src/proxy/bad_dcheck.cc:6:16: error: '--' inside COMMA_DCHECK mutates state the release "
      "build never executes; hoist the side effect out of the check [comma-check-side-effect]",
      "src/proxy/bad_lock_order.cc:15:37: error: acquires 'table_mu_' (rank 10) while 'row_mu_' "
      "(rank 20) is held; the DESIGN.md lock hierarchy orders acquisitions by increasing rank "
      "[comma-lock-order]",
      "src/proxy/bad_lock_order.cc:19:37: error: acquires 'rogue_mu_', which is not in the "
      "DESIGN.md lock-hierarchy table; every lock must be ranked before it can be taken "
      "[comma-lock-order]",
      "src/proxy/bad_lock_order.cc:22:54: error: declared to acquire 'table_mu_' (rank 10) "
      "while requiring 'row_mu_' (rank 20); the DESIGN.md lock hierarchy orders acquisitions "
      "by increasing rank [comma-lock-order]",
      "src/proxy/bad_nolint.cc:5:28: error: comma-lint suppression is missing its reason; write "
      "`NOLINT(<rule>): <why this site is exempt>` [comma-nolint-reason]",
      "src/reassembly/bad_http.cc:9:19: error: raw '<' on TCP sequence values 'frontier' and "
      "'seg_seq' breaks at the 2^32 wrap; use comma::tcp::SeqLt [comma-seq-raw-compare]",
      "src/reassembly/bad_http.cc:13:18: error: raw '-' on TCP sequence values 'seg_end' and "
      "'frontier' breaks at the 2^32 wrap; use comma::tcp::SeqDiff [comma-seq-raw-compare]",
      "src/reassembly/bad_http.cc:17:3: error: COMMA_DCHECK_LT on TCP sequence values 'frontier' "
      "and 'fin_seq' breaks at the 2^32 wrap; assert comma::tcp::SeqLt(...) instead "
      "[comma-seq-raw-compare]",
      "src/sim/bad_nondet.cc:10:31: error: 'std::random_device' taps OS entropy and breaks "
      "replay; seed a sim::Random from the scenario config [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:11:28: error: 'rand()' draws from the unseeded global RNG; draw "
      "from the scenario's seeded sim::Random instead [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:12:35: error: wall-clock read via std::chrono::steady_clock in "
      "deterministic code; event time is sim::Simulator::Now() [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:13:23: error: wall-clock call 'time()' in deterministic code; "
      "event time is sim::Simulator::Now() [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:14:34: error: 'getenv()' makes behaviour host-dependent; thread "
      "configuration through the scenario/config structs [comma-nondeterminism-ban]",
      "src/sim/bad_nondet.cc:15:6: error: pointer-keyed std::unordered_map iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/sim/bad_shard.cc:15:6: error: pointer-keyed std::unordered_map iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/sim/bad_shard.cc:16:6: error: pointer-keyed std::unordered_set iterates in address "
      "order, which varies run to run; key by a stable id or use an ordered container "
      "[comma-nondeterminism-ban]",
      "src/tcp/bad_include.cc:4:10: error: forbidden include of \"src/filters/ttsf_filter.h\": "
      "src/tcp sits below src/filters in the DESIGN.md layer DAG [comma-include-layering]",
      "src/tcp/bad_include.cc:5:10: error: forbidden include of \"src/obs/metric_registry.h\": "
      "src/tcp sits below src/obs in the DESIGN.md layer DAG [comma-include-layering]",
      "src/tcp/bad_seq.cc:7:18: error: raw '<' on TCP sequence values 'snd_una' and 'snd_nxt' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqLt [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:11:18: error: raw '-' on TCP sequence values 'end_seq' and 'rcv_nxt' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqDiff [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:19:17: error: raw '>' on TCP sequence values 'seq_lo' and 'seq_hi' "
      "breaks at the 2^32 wrap; use comma::tcp::SeqGt [comma-seq-raw-compare]",
      "src/tcp/bad_seq.cc:23:3: error: COMMA_DCHECK_LT on TCP sequence values 'pkt_seq' and "
      "'pkt_ack' breaks at the 2^32 wrap; assert comma::tcp::SeqLt(...) instead "
      "[comma-seq-raw-compare]",
  };
  EXPECT_EQ(Rendered(result.findings), expected);
  EXPECT_TRUE(result.baselined.empty());
}

// The clean fixture — sanctioned idioms only — contributes nothing.
TEST(CommaLint, CleanFixtureHasNoFindings) {
  const LintResult result = RunOver(Testdata());
  for (const Diagnostic& d : result.findings) {
    EXPECT_NE(d.file, "src/proxy/clean.cc") << d.Render();
  }
}

// --rule restricts the run to the named rules.
TEST(CommaLint, RuleSelectionRestrictsFindings) {
  LintOptions opts;
  opts.rules = {"seq-raw-compare"};
  const LintResult result = RunOver(Testdata(), opts);
  ASSERT_EQ(result.findings.size(), 7u);  // 4 in bad_seq.cc + 3 in bad_http.cc.
  for (const Diagnostic& d : result.findings) {
    EXPECT_EQ(d.rule, "seq-raw-compare");
  }

  LintOptions bad;
  bad.root = Testdata();
  bad.paths = {"src"};
  bad.rules = {"no-such-rule"};
  LintResult ignored;
  std::string error;
  EXPECT_FALSE(RunLint(bad, &ignored, &error));
  EXPECT_NE(error.find("unknown rule"), std::string::npos) << error;
}

// The NOLINT contract: the rule must be named; a bare NOLINT (clang-tidy
// habit) does not silence comma-lint. Both spellings of the rule work, and
// NOLINTNEXTLINE anchors to the following line.
TEST(CommaLint, SuppressionRequiresExplicitRuleName) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/tcp/fixture.cc", body));
    Diagnostics out;
    MakeSeqRawCompareRule()->Check(project, &out);
    return out.size();
  };
  const std::string stmt = "bool F(uint32_t seq_lo, uint32_t seq_hi) { return seq_lo < seq_hi; }";
  EXPECT_EQ(findings_in(stmt + "\n"), 1u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT\n"), 1u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(comma-seq-raw-compare)\n"), 0u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(seq-raw-compare)\n"), 0u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare)\n" + stmt + "\n"), 0u);
  EXPECT_EQ(findings_in(stmt + "  // NOLINT(comma-bytes-raw-cast)\n"), 1u);  // Wrong rule.
}

// --fix rewrites the mechanical rules to the seq.h / bytes.h helpers and
// inserts the required include; suppressed sites and non-fixable findings
// (memcpy, macro comparisons) are left alone.
TEST(CommaLint, FixRewritesMatchGoldenFiles) {
  const fs::path tmp = fs::path(::testing::TempDir()) / "comma_lint_fix";
  fs::remove_all(tmp);
  fs::create_directories(tmp);
  fs::copy(fs::path(Testdata()) / "src", tmp / "src", fs::copy_options::recursive);

  LintOptions opts;
  opts.apply_fixes = true;
  const LintResult result = RunOver(tmp.string(), opts);
  EXPECT_EQ(result.fixes_applied, 7);  // 3 in bad_seq.cc + 2 in bad_cast.cc + 2 in bad_http.cc.
  const std::vector<std::string> expected_fixed = {"src/proxy/bad_cast.cc",
                                                   "src/reassembly/bad_http.cc",
                                                   "src/tcp/bad_seq.cc"};
  EXPECT_EQ(result.fixed_files, expected_fixed);

  const fs::path golden = fs::path(Testdata()) / "golden";
  EXPECT_EQ(ReadFile(tmp / "src/tcp/bad_seq.cc"), ReadFile(golden / "bad_seq.cc.golden"));
  EXPECT_EQ(ReadFile(tmp / "src/proxy/bad_cast.cc"), ReadFile(golden / "bad_cast.cc.golden"));
  EXPECT_EQ(ReadFile(tmp / "src/reassembly/bad_http.cc"),
            ReadFile(golden / "bad_http.cc.golden"));
  // Non-fixable rules leave their files untouched.
  EXPECT_EQ(ReadFile(tmp / "src/proxy/bad_dcheck.cc"),
            ReadFile(fs::path(Testdata()) / "src/proxy/bad_dcheck.cc"));

  // The rewritten tree keeps only the non-mechanical findings.
  const LintResult refixed = RunOver(tmp.string());
  for (const Diagnostic& d : refixed.findings) {
    EXPECT_TRUE(d.rule != "seq-raw-compare" || d.file != "src/tcp/bad_seq.cc" ||
                d.message.find("COMMA_DCHECK_LT") != std::string::npos)
        << d.Render();
  }
  fs::remove_all(tmp);
}

// --write-baseline grandfathers the current findings; a second run reports
// them as baselined, not new.
TEST(CommaLint, BaselineRoundTrip) {
  const fs::path baseline = fs::path(::testing::TempDir()) / "comma_lint_baseline.txt";
  fs::remove(baseline);

  LintOptions first;
  first.baseline_path = baseline.string();
  first.write_baseline = true;
  const LintResult before = RunOver(Testdata(), first);
  EXPECT_FALSE(before.findings.empty());
  EXPECT_TRUE(before.baselined.empty());

  LintOptions second;
  second.baseline_path = baseline.string();
  const LintResult after = RunOver(Testdata(), second);
  EXPECT_TRUE(after.findings.empty())
      << (after.findings.empty() ? "" : after.findings.front().Render());
  EXPECT_EQ(after.baselined.size(), before.findings.size());
  fs::remove(baseline);
}

// The catalog: ten rules, the two mechanical ones marked fixable, and the
// instantiation-free name list (BuiltinRuleNames) in lockstep.
TEST(CommaLint, BuiltinRuleCatalog) {
  const std::vector<RulePtr> rules = BuiltinRules();
  std::vector<std::string> names;
  std::vector<std::string> fixable;
  for (const RulePtr& r : rules) {
    names.emplace_back(r->name());
    EXPECT_FALSE(r->description().empty());
    if (r->fixable()) {
      fixable.emplace_back(r->name());
    }
  }
  const std::vector<std::string> expected_names = {
      "seq-raw-compare",  "bytes-raw-cast",  "check-side-effect", "metric-name-style",
      "include-layering", "filter-contract", "mutex-annotation",  "nondeterminism-ban",
      "lock-order",       "nolint-reason",
  };
  EXPECT_EQ(names, expected_names);
  EXPECT_EQ(fixable, (std::vector<std::string>{"seq-raw-compare", "bytes-raw-cast"}));
  std::vector<std::string> listed;
  for (std::string_view n : BuiltinRuleNames()) {
    listed.emplace_back(n);
  }
  EXPECT_EQ(listed, expected_names);
}

// A scan fanned out over worker threads produces byte-for-byte the same
// result as the serial scan: files land in fixed slots, rules run after
// the barrier.
TEST(CommaLint, ParallelScanMatchesSerial) {
  const LintResult serial = RunOver(Testdata());
  LintOptions opts;
  opts.jobs = 4;
  const LintResult parallel = RunOver(Testdata(), opts);
  EXPECT_EQ(Rendered(parallel.findings), Rendered(serial.findings));
  EXPECT_EQ(parallel.files_scanned, serial.files_scanned);
}

// mutex-annotation in isolation: an uncited mutex is a finding, citing it
// from any COMMA_GUARDED_BY member clears it.
TEST(CommaLint, MutexAnnotationCitedMutexIsClean) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/obs/fixture.h", body));
    Diagnostics out;
    MakeMutexAnnotationRule()->Check(project, &out);
    return out.size();
  };
  const std::string unguarded =
      "class R {\n"
      "  std::mutex mu_;\n"
      "  int hits_ = 0;\n"
      "};\n";
  const std::string guarded =
      "class R {\n"
      "  std::mutex mu_;\n"
      "  int hits_ COMMA_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_EQ(findings_in(unguarded), 1u);
  EXPECT_EQ(findings_in(guarded), 0u);
}

// The nondeterminism allowlist: a table entry (file, api) sanctions that
// one API in that one file, like an include-layering edge; "*" sanctions
// the whole file. Other files stay banned.
TEST(CommaLint, NondeterminismAllowlistIsPerFileAndApi) {
  const auto findings_with = [](std::vector<NondetAllowance> allow) {
    Project project;
    project.files.push_back(
        MakeLintFile("src/sim/entropy.cc", "unsigned S() { return std::random_device{}(); }\n"));
    project.files.push_back(
        MakeLintFile("src/sim/other.cc", "unsigned T() { return std::random_device{}(); }\n"));
    Diagnostics out;
    MakeNondeterminismRule(std::move(allow))->Check(project, &out);
    return out.size();
  };
  EXPECT_EQ(findings_with({}), 2u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "random_device"}}), 1u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "*"}}), 1u);
  EXPECT_EQ(findings_with({{"src/sim/entropy.cc", "rand"}}), 2u);  // Wrong API.
}

// The lock-order hierarchy round-trips from the DESIGN.md table: ranks
// declared there decide which nestings are findings, and a lock missing
// from the table cannot be taken.
TEST(CommaLint, LockOrderRoundTripsFromDesignTable) {
  const std::string design =
      "# Fixture\n"
      "### Lock hierarchy\n"
      "\n"
      "| Rank | Lock | Owner |\n"
      "|------|------|-------|\n"
      "| 10 | `outer_mu_` | A |\n"
      "| 20 | `inner_mu_` | B |\n";
  const auto findings_in = [&](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/obs/fixture.cc", body));
    project.design = MakeLintFile("DESIGN.md", design);
    project.has_design = true;
    Diagnostics out;
    MakeLockOrderRule()->Check(project, &out);
    return out;
  };
  const std::string good =
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(outer_mu_);\n"
      "  std::lock_guard<std::mutex> b(inner_mu_);\n"
      "}\n";
  const std::string inverted =
      "void F() {\n"
      "  std::lock_guard<std::mutex> a(inner_mu_);\n"
      "  std::lock_guard<std::mutex> b(outer_mu_);\n"
      "}\n";
  const std::string unranked = "void F() { std::lock_guard<std::mutex> a(stray_mu_); }\n";
  EXPECT_TRUE(findings_in(good).empty());
  ASSERT_EQ(findings_in(inverted).size(), 1u);
  EXPECT_NE(findings_in(inverted)[0].message.find("rank 10"), std::string::npos);
  ASSERT_EQ(findings_in(unranked).size(), 1u);
  EXPECT_NE(findings_in(unranked)[0].message.find("not in the DESIGN.md"), std::string::npos);

  // Without a hierarchy table the rule has nothing to enforce.
  Project no_design;
  no_design.files.push_back(MakeLintFile("src/obs/fixture.cc", inverted));
  Diagnostics out;
  MakeLockOrderRule()->Check(no_design, &out);
  EXPECT_TRUE(out.empty());
}

// The suppression-reason contract: a comma-rule NOLINT without a trailing
// `: reason` is a finding; reasons and third-party suppressions are not.
TEST(CommaLint, NolintReasonRequiredOnCommaSuppressions) {
  const auto findings_in = [](const std::string& body) {
    Project project;
    project.files.push_back(MakeLintFile("src/tcp/fixture.cc", body));
    Diagnostics out;
    MakeNolintReasonRule()->Check(project, &out);
    return out.size();
  };
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-seq-raw-compare)\n"), 1u);
  EXPECT_EQ(findings_in("int x;  // NOLINT(seq-raw-compare)\n"), 1u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare)\nint x;\n"), 1u);
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-seq-raw-compare): event seq, not TCP\n"), 0u);
  EXPECT_EQ(findings_in("// NOLINTNEXTLINE(comma-seq-raw-compare): event seq\nint x;\n"), 0u);
  // Third-party (clang-tidy) suppressions are not comma-lint's business.
  EXPECT_EQ(findings_in("int x;  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)\n"), 0u);
  // Bare NOLINT never silences comma-lint, so no reason is demanded either.
  EXPECT_EQ(findings_in("int x;  // NOLINT\n"), 0u);
  // A bare suppression of this very rule does not silence it.
  EXPECT_EQ(findings_in("int x;  // NOLINT(comma-nolint-reason)\n"), 1u);
}

// The declared-type exemption: a uint64_t `seq` (the simulator's event
// tie-breaker) is not a TCP sequence number.
TEST(CommaLint, DeclaredTypeExemptsNonUint32Sequences) {
  Project project;
  project.files.push_back(MakeLintFile(
      "src/sim/fixture.h",
      "struct Ev { uint64_t event_seq; };\n"
      "bool Before(uint64_t event_seq, uint64_t other_seq) { return event_seq < other_seq; }\n"));
  Diagnostics out;
  MakeSeqRawCompareRule()->Check(project, &out);
  EXPECT_TRUE(out.empty()) << out.front().Render();
}

}  // namespace
}  // namespace comma::lint

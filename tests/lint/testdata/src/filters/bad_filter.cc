// filter-contract fixtures. Never compiled; scanned by tests/lint.
#include <memory>

namespace fixture {

class MisnamedFilter : public proxy::Filter {
 public:
  MisnamedFilter() : Filter("misnamed", proxy::FilterPriority::kNormal) {}
  void In(proxy::FilterContext& ctx, net::Packet& packet) override;
};

class DeafFilter : public proxy::Filter {
 public:
  DeafFilter() : Filter("deaf", proxy::FilterPriority::kNormal) {}
};

void RegisterFixtures(FilterRegistry* registry) {
  registry->Register("mis-named", "fixture", std::make_unique<MisnamedFilter>());
  registry->Register("deaf", "fixture", std::make_unique<DeafFilter>());
  registry->Register("ghost", "fixture", std::make_unique<GhostFilter>());
}

}  // namespace fixture

// include-layering restricted-edge fixture: net may take only counter.h
// from obs. Never compiled; scanned by tests/lint.
#include "src/obs/counter.h"
#include "src/obs/metric_registry.h"

// buffer-lifetime fixtures. Never compiled; scanned by tests/lint.
//
// payload() hands out a reference into the packet's own storage; these
// functions keep pointers into it across the three points where the
// storage can move (set_payload, std::move to the requeue path, a field).

namespace fixture {

class PayloadStash {
 public:
  void Capture(net::Packet& pkt);

 private:
  const uint8_t* tail_ = nullptr;
};

// Field retention: tail_ outlives the call; the packet's buffer does not.
void PayloadStash::Capture(net::Packet& pkt) {
  tail_ = pkt.payload().data();
}

// Use after set_payload(): `head` points into the replaced buffer.
uint8_t FirstByteAfterSwap(net::Packet& pkt) {
  const uint8_t* head = pkt.payload().data();
  pkt.set_payload(util::Bytes());
  return head[0];
}

// Use after the packet is std::move()d to the requeue path.
void Requeue(net::PacketPtr pkt, Queue* queue) {
  const uint8_t* head = pkt->payload().data();
  queue->Push(std::move(pkt));
  Log(head);
}

// Clean: the alias belongs to `keep`; only `toss` is invalidated.
void Splice(net::Packet& keep, net::Packet& toss) {
  const uint8_t* left = keep.payload().data();
  toss.set_payload(util::Bytes());
  Log(left);
}

}  // namespace fixture

// checkpoint-blob-symmetry fixtures. Never compiled; scanned by tests/lint.
//
// Each Skew* class breaks the Export/ImportState contract one way;
// Mirrored is the clean control whose import replays the export exactly.

namespace fixture {

// Clean: header, count, then a depth-1 loop of (u16, string) on both sides.
bool Mirrored::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kMirroredMagic, kMirroredVersion);
  w->WriteU32(static_cast<uint32_t>(rows_.size()));
  for (const Row& row : rows_) {
    w->WriteU16(row.id);
    w->WriteString(row.name);
  }
  return true;
}

bool Mirrored::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kMirroredMagic, kMirroredVersion)) return false;
  const uint32_t n = r->ReadU32();
  for (uint32_t i = 0; i < n; ++i) {
    Row row;
    row.id = r->ReadU16();
    row.name = r->ReadString();
    rows_.push_back(row);
  }
  return true;
}

// Width desync: the export writes the port as u16, the import reads u32.
bool SkewWidth::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kSkewWidthMagic, kSkewWidthVersion);
  w->WriteU16(port_);
  w->WriteU64(bytes_seen_);
  return true;
}

bool SkewWidth::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kSkewWidthMagic, kSkewWidthVersion)) return false;
  port_ = r->ReadU32();
  bytes_seen_ = r->ReadU64();
  return true;
}

// Magic mismatch: the two halves name different tag constants.
bool SkewMagic::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kSkewMagicNew, kSkewMagicVersion);
  w->WriteU8(mode_);
  return true;
}

bool SkewMagic::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kSkewMagicOld, kSkewMagicVersion)) return false;
  mode_ = r->ReadU8();
  return true;
}

// Version skew: the import checks a version constant the export never wrote.
bool SkewVersion::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kSkewVerMagic, kSkewVerV2Version);
  w->WriteU8(flags_);
  return true;
}

bool SkewVersion::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kSkewVerMagic, kSkewVerV1Version)) return false;
  flags_ = r->ReadU8();
  return true;
}

// Loop-depth skew: the export writes every key inside the loop; the import
// reads exactly one key outside any loop.
bool SkewLoop::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kSkewLoopMagic, kSkewLoopVersion);
  w->WriteU32(static_cast<uint32_t>(keys_.size()));
  for (uint64_t key : keys_) {
    w->WriteU64(key);
  }
  return true;
}

bool SkewLoop::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kSkewLoopMagic, kSkewLoopVersion)) return false;
  const uint32_t n = r->ReadU32();
  keys_.push_back(r->ReadU64());
  return true;
}

// Truncated import: the restore stops before the drop counter.
bool SkewTail::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kSkewTailMagic, kSkewTailVersion);
  w->WriteU32(acked_);
  w->WriteU32(dropped_);
  return true;
}

bool SkewTail::ImportState(util::ByteReader* r) {
  if (!proxy::ReadStateHeader(r, kSkewTailMagic, kSkewTailVersion)) return false;
  acked_ = r->ReadU32();
  return true;
}

// Lone half: a blob nobody can ever restore.
bool Orphan::ExportState(util::ByteWriter* w) const {
  proxy::WriteStateHeader(w, kOrphanMagic, kOrphanVersion);
  w->WriteU64(epoch_);
  return true;
}

}  // namespace fixture

// guarded-field-flow fixtures. Never compiled; scanned by tests/lint.
//
// Ledger's fields carry COMMA_GUARDED_BY(ledger_mu_); the rule's CFG
// must-analysis should accept Post (guard covers the access) and flag the
// three accesses where some path reaches the field without the lock.

namespace fixture {

class Ledger {
 public:
  void Post(uint64_t amount);
  void Flush(bool fast);
  void Reset();
  uint64_t Total();

 private:
  std::mutex ledger_mu_;
  uint64_t posted_ COMMA_GUARDED_BY(ledger_mu_) = 0;
  uint64_t flushed_ COMMA_GUARDED_BY(ledger_mu_) = 0;
};

// Clean: the RAII guard is live at the access.
void Ledger::Post(uint64_t amount) {
  std::lock_guard<std::mutex> lk(ledger_mu_);
  posted_ += amount;
}

// Path-sensitive: the lock is only taken when `fast` is false, so the
// access is unguarded on the fast path. Lexical matching cannot see this.
void Ledger::Flush(bool fast) {
  if (!fast) {
    ledger_mu_.lock();
  }
  flushed_ += 1;
  if (!fast) {
    ledger_mu_.unlock();
  }
}

// Scope-sensitive: the guard dies at the inner closing brace, so the
// second store runs unlocked.
void Ledger::Reset() {
  {
    std::lock_guard<std::mutex> lk(ledger_mu_);
    posted_ = 0;
  }
  flushed_ = 0;
}

// Plain unguarded read.
uint64_t Ledger::Total() {
  return posted_;
}

}  // namespace fixture

// bytes-raw-cast fixtures. Never compiled; scanned by tests/lint.
#include <cstdint>
#include <cstring>

namespace fixture {

const char* CharView(const uint8_t* data) {
  return reinterpret_cast<const char*>(data);
}

const uint8_t* ByteView(const char* text) {
  return reinterpret_cast<const uint8_t*>(text);
}

void RawCopy(uint8_t* dst, const uint8_t* src_buf, unsigned n) {
  memcpy(dst, src_buf, n);
}

void SuppressedCopy(uint8_t* dst, const uint8_t* src_buf, unsigned n) {
  memcpy(dst, src_buf, n);  // NOLINT(comma-bytes-raw-cast): fixture
}

}  // namespace fixture

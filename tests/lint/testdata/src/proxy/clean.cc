// Clean fixture: the sanctioned idioms the rules push toward. Never
// compiled; scanned by tests/lint — must produce zero findings.
#include <cstdint>

#include "src/tcp/seq.h"
#include "src/util/bytes.h"

namespace fixture {

bool InWindow(uint32_t rcv_nxt, uint32_t seg_seq) {
  return comma::tcp::SeqLeq(rcv_nxt, seg_seq);
}

const char* Text(const uint8_t* data) {
  return comma::util::AsCharPtr(data);
}

}  // namespace fixture

// Clean fixture: the sanctioned idioms the rules push toward. Never
// compiled; scanned by tests/lint — must produce zero findings.
#include <cstdint>
#include <mutex>

#include "src/tcp/seq.h"
#include "src/util/bytes.h"
#include "src/util/thread_annotations.h"

namespace fixture {

bool InWindow(uint32_t rcv_nxt, uint32_t seg_seq) {
  return comma::tcp::SeqLeq(rcv_nxt, seg_seq);
}

const char* Text(const uint8_t* data) {
  return comma::util::AsCharPtr(data);
}

// Annotated shared state: every mutex is cited by a COMMA_GUARDED_BY, the
// *_locked_ field is guarded, and the nested acquisition follows the
// testdata/DESIGN.md ranks (table_mu_ 10 before row_mu_ 20).
class Cache {
 public:
  void Put(int row) {
    std::lock_guard<std::mutex> table(table_mu_);
    std::lock_guard<std::mutex> row_guard(row_mu_);
    rows_locked_ = row;
    ++size_;
  }

 private:
  std::mutex table_mu_;
  std::mutex row_mu_;
  int size_ COMMA_GUARDED_BY(table_mu_) = 0;
  int rows_locked_ COMMA_GUARDED_BY(row_mu_) = 0;
};

int justified = 1;  // NOLINT(comma-metric-name-style): synthetic fixture name

}  // namespace fixture

// Bad fixture: a comma suppression without its reason. Never compiled;
// scanned by tests/lint.
namespace fixture {

int grandfathered = 0;  // NOLINT(comma-metric-name-style)
int justified = 1;      // NOLINT(comma-metric-name-style): synthetic fixture name

}  // namespace fixture

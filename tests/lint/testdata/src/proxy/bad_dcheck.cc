// check-side-effect fixtures. Never compiled; scanned by tests/lint.

namespace fixture {

void Consume(int budget) {
  COMMA_DCHECK(--budget >= 0);
}

void Fine(int budget) {
  COMMA_DCHECK(budget >= 0);
}

}  // namespace fixture

// Bad fixture: lock acquisitions against the declared hierarchy
// (testdata/DESIGN.md). Never compiled; scanned by tests/lint.
#include <mutex>

#include "src/util/thread_annotations.h"

namespace fixture {

std::mutex table_mu_;
std::mutex row_mu_;
std::mutex rogue_mu_;

void NestedAgainstRank() {
  std::lock_guard<std::mutex> row(row_mu_);
  std::lock_guard<std::mutex> table(table_mu_);
}

void UnrankedLock() {
  std::lock_guard<std::mutex> rogue(rogue_mu_);
}

void Promote() COMMA_REQUIRES(row_mu_) COMMA_ACQUIRE(table_mu_);

}  // namespace fixture

// seq-raw-compare fixtures. Never compiled; scanned by tests/lint.
#include <cstdint>

namespace fixture {

bool RawLess(uint32_t snd_una, uint32_t snd_nxt) {
  return snd_una < snd_nxt;
}

uint32_t RawDistance(uint32_t end_seq, uint32_t rcv_nxt) {
  return end_seq - rcv_nxt;
}

bool Suppressed(uint32_t seq_lo, uint32_t seq_hi) {
  return seq_lo < seq_hi;  // NOLINT(comma-seq-raw-compare): fixture
}

bool BareNolintStillFires(uint32_t seq_lo, uint32_t seq_hi) {
  return seq_lo > seq_hi;  // NOLINT
}

void MacroForm(uint32_t pkt_seq, uint32_t pkt_ack) {
  COMMA_DCHECK_LT(pkt_seq, pkt_ack);
}

uint64_t TieBreaker(uint64_t event_seq, uint64_t other_seq) {
  return event_seq > other_seq ? event_seq : other_seq;
}

}  // namespace fixture

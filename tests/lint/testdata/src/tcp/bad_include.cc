// include-layering fixtures. Never compiled; scanned by tests/lint.
#include "src/tcp/seq.h"
#include "src/util/bytes.h"
#include "src/filters/ttsf_filter.h"
#include "src/obs/metric_registry.h"

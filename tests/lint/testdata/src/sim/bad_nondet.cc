// Bad fixture: every banned nondeterminism source. Never compiled; scanned
// by tests/lint.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

unsigned Seed() { return std::random_device{}(); }
int Jitter() { return std::rand() % 7; }
long Wall() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long Stamp() { return time(nullptr); }
const char* Mode() { return std::getenv("COMMA_MODE"); }
std::unordered_map<const void*, int> visit_order;

}  // namespace fixture

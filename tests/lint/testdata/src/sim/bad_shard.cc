// Bad fixture: the nondeterminism traps specific to the region-sharded
// event loop (event_shard / cross_region_channel). Never compiled; scanned
// by tests/lint.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Event;
struct Channel;

// Draining arrivals keyed by channel *pointer* replays in allocator order,
// which varies run to run — exactly the bug the (dst, src) map key exists
// to prevent.
std::unordered_map<Channel*, int> pending_by_channel;
std::unordered_set<const Event*> cancelled;

}  // namespace fixture

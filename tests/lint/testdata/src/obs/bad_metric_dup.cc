// metric-consistency fixtures. Never compiled; scanned by tests/lint.
//
// Every name here is inside the EEM-bridged namespace (metric-name-style
// stays quiet); the bugs are cross-site: one name under two families, a
// replaced source registration, and a watch example naming a metric no
// registration site interns.

namespace fixture {

void BindPrimary(Registry* registry) {
  registry->GetCounter("sp.proxy.rebinds");
  registry->RegisterGaugeSource("sp.proxy.queue_depth", [] { return 0.0; });
}

void BindSecondary(Registry* registry) {
  // Same name, different family: the registry interns per family.
  registry->GetGauge("sp.proxy.rebinds");
  // Second source site: source registrations replace, so this one wins.
  registry->RegisterGaugeSource("sp.proxy.queue_depth", [] { return 1.0; });
}

// The runbook hint points at a metric nothing registers.
const char* kWatchHint = "watch sp.proxy.ghost_metric 5s";

}  // namespace fixture

// Bad fixture: shared state whose lock story is not written down. Never
// compiled; scanned by tests/lint.
#include <mutex>

namespace fixture {

class SilentRegistry {
 public:
  void Bump();

 private:
  std::mutex mu_;
  int hits_locked_ = 0;
};

}  // namespace fixture

// metric-name-style fixtures. Never compiled; scanned by tests/lint.

namespace fixture {

void Bind(Registry* registry) {
  registry->GetCounter("sp.packets_inspected");
  registry->GetCounter("SP.packets");
  registry->GetGauge("kati.decision_loops");
  registry->GetHistogram("eem.Handoff.Latency", 0.0, 1.0, 32);
  // Clean: the failover namespaces are EEM-bridged too.
  registry->GetCounter("mip.registrations_accepted");
  registry->GetCounter("sp.recovery.streams_restored");
  registry->GetGauge("mip.last_handoff_latency_us");
}

}  // namespace fixture

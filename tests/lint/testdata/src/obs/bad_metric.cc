// metric-name-style fixtures. Never compiled; scanned by tests/lint.

namespace fixture {

void Bind(Registry* registry) {
  registry->GetCounter("sp.packets_inspected");
  registry->GetCounter("SP.packets");
  registry->GetGauge("kati.decision_loops");
  registry->GetHistogram("eem.Handoff.Latency", 0.0, 1.0, 32);
}

}  // namespace fixture

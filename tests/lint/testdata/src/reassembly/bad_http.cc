// seq-raw-compare fixtures for the reassembly tier. Never compiled; scanned
// by tests/lint. The stream reassembler keys its pending buffers by raw
// sequence numbers, so the wrap bugs this rule exists for land here first.
#include <cstdint>

namespace fixture {

bool SegmentBeyondFrontier(uint32_t frontier, uint32_t seg_seq) {
  return frontier < seg_seq;
}

uint32_t BytesPastFrontier(uint32_t seg_end, uint32_t frontier) {
  return seg_end - frontier;
}

void CheckFinOrdering(uint32_t frontier, uint32_t fin_seq) {
  COMMA_DCHECK_LT(frontier, fin_seq);
}

}  // namespace fixture

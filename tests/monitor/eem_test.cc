// End-to-end EEM tests: server on the gateway, client on the mobile host,
// monitor traffic riding the simulated network.
#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"

namespace comma::monitor {
namespace {

class EemTest : public ::testing::Test {
 protected:
  EemTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    EemServerConfig server_cfg;
    server_cfg.check_interval = 200 * sim::kMillisecond;
    server_cfg.update_interval = sim::kSecond;
    server_ = std::make_unique<EemServer>(&scenario_->gateway(), server_cfg);
    client_ = std::make_unique<EemClient>(&scenario_->mobile_host());
  }

  VariableId Id(const std::string& name, uint32_t index = 0) {
    VariableId id;
    id.name = name;
    id.index = index;
    id.server = scenario_->gateway_wireless_addr();
    return id;
  }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<EemServer> server_;
  std::unique_ptr<EemClient> client_;
};

TEST_F(EemTest, ServerReadsSnmpVariables) {
  auto descr = server_->ReadVariable("sysDescr", 0);
  ASSERT_TRUE(descr.has_value());
  EXPECT_NE(std::get<std::string>(*descr).find("gateway"), std::string::npos);
  EXPECT_TRUE(server_->ReadVariable("ipForwDatagrams", 0).has_value());
  EXPECT_TRUE(server_->ReadVariable("tcpCurrEstab", 0).has_value());
  EXPECT_FALSE(server_->ReadVariable("noSuchVariable", 0).has_value());
}

TEST_F(EemTest, InterfaceVariablesAreIndexed) {
  // The gateway has two interfaces; SNMP indexes from 1.
  EXPECT_EQ(server_->ReadVariable("ifNumbers", 0), Value(int64_t{2}));
  EXPECT_TRUE(server_->ReadVariable("ifSpeed", 1).has_value());
  EXPECT_TRUE(server_->ReadVariable("ifSpeed", 2).has_value());
  EXPECT_FALSE(server_->ReadVariable("ifSpeed", 3).has_value());
  EXPECT_FALSE(server_->ReadVariable("ifSpeed", 0).has_value());
  // The wireless interface (index 2) is 1 Mbit/s in the default scenario.
  EXPECT_EQ(server_->ReadVariable("ifSpeed", 2), Value(int64_t{1'000'000}));
}

TEST_F(EemTest, IfOperStatusTracksLinkState) {
  EXPECT_EQ(server_->ReadVariable("ifOperStatus", 2), Value(int64_t{1}));
  scenario_->wireless_link().SetUp(false);
  EXPECT_EQ(server_->ReadVariable("ifOperStatus", 2), Value(int64_t{2}));
  scenario_->wireless_link().SetUp(true);
  EXPECT_EQ(server_->ReadVariable("ifOperStatus", 2), Value(int64_t{1}));
}

TEST_F(EemTest, HostProviderVariablesExist) {
  for (const char* name : {"netLatency", "cpuLoadAvg", "deviceList", "bytes_rx", "bytes_tx"}) {
    EXPECT_TRUE(server_->ReadVariable(name, 0).has_value()) << name;
  }
}

TEST_F(EemTest, PeriodicUpdatesFillProtectedDataArea) {
  client_->Register(Id("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(3 * sim::kSecond);
  auto v = client_->GetValue(Id("sysUpTime"));
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(std::get<int64_t>(*v), 0);
  EXPECT_TRUE(client_->IsInRange(Id("sysUpTime")));
}

TEST_F(EemTest, HasChangedClearsOnRead) {
  client_->Register(Id("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(3 * sim::kSecond);
  EXPECT_TRUE(client_->HasChanged(Id("sysUpTime")));
  client_->GetValue(Id("sysUpTime"));
  EXPECT_FALSE(client_->HasChanged(Id("sysUpTime")));
  // The next update (uptime keeps growing) sets it again.
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_TRUE(client_->HasChanged(Id("sysUpTime")));
}

TEST_F(EemTest, InterruptNotificationFiresCallback) {
  // Watch the wireless interface status; take the link down mid-run.
  std::vector<int64_t> seen;
  client_->SetCallback([&](const VariableId& id, const Value& v) {
    if (id.name == "ifOperStatus") {
      seen.push_back(std::get<int64_t>(v));
    }
  });
  client_->Register(Id("ifOperStatus", 2), Attr::Always(NotifyMode::kInterrupt));
  scenario_->sim().RunFor(sim::kSecond);
  scenario_->sim().Schedule(0, [this] { scenario_->wireless_link().SetUp(false); });
  scenario_->sim().RunFor(2 * sim::kSecond);
  // Link is down: notify can't reach the mobile! Status change is seen after
  // the link heals.
  scenario_->sim().Schedule(0, [this] { scenario_->wireless_link().SetUp(true); });
  scenario_->sim().RunFor(2 * sim::kSecond);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen.front(), 1);   // Initial up.
  EXPECT_EQ(seen.back(), 1);    // Back up after the outage.
}

TEST_F(EemTest, RangeRestrictedInterruptFiresOnEntry) {
  // Thesis Fig. 6.2 semantics: notify when the variable enters [lo, hi].
  int callbacks = 0;
  client_->SetCallback([&](const VariableId&, const Value&) { ++callbacks; });
  // ifOutQLen of the wireless interface >= 1 (queue occupied).
  client_->Register(Id("ifOutQLen", 2),
                    Attr::Unary(Op::kGte, int64_t{1}, NotifyMode::kInterrupt));
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(callbacks, 0);  // Queue empty so far.
}

TEST_F(EemTest, GetValueOncePollsAsynchronously) {
  std::optional<Value> result;
  client_->GetValueOnce(Id("sysName"), [&](const VariableId&, const Value& v) { result = v; });
  scenario_->sim().RunFor(sim::kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(std::get<std::string>(*result), "gateway");
  // One-shot registrations leave no residue on the server.
  EXPECT_EQ(server_->RegistrationCount(), 0u);
}

TEST_F(EemTest, DeregisterStopsUpdates) {
  client_->Register(Id("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(3 * sim::kSecond);
  ASSERT_EQ(server_->RegistrationCount(), 1u);
  client_->Deregister(Id("sysUpTime"));
  scenario_->sim().RunFor(sim::kSecond);
  EXPECT_EQ(server_->RegistrationCount(), 0u);
}

TEST_F(EemTest, DeregisterAllCleansServer) {
  client_->Register(Id("sysUpTime"), Attr::Always());
  client_->Register(Id("ipInReceives"), Attr::Always());
  client_->Register(Id("cpuLoadAvg"), Attr::Always());
  scenario_->sim().RunFor(sim::kSecond);
  EXPECT_EQ(server_->RegistrationCount(), 3u);
  client_->DeregisterAll();
  scenario_->sim().RunFor(sim::kSecond);
  EXPECT_EQ(server_->RegistrationCount(), 0u);
}

TEST_F(EemTest, UnchangedValuesAreNotResent) {
  // sysName never changes: after the first update no more bytes flow.
  client_->Register(Id("sysName"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(3 * sim::kSecond);
  const uint64_t updates_after_first = server_->updates_sent();
  scenario_->sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(server_->updates_sent(), updates_after_first);
}

TEST_F(EemTest, MultipleVariablesBatchIntoOneUpdate) {
  client_->Register(Id("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  client_->Register(Id("bytes_rx"), Attr::Always(NotifyMode::kPeriodic));
  client_->Register(Id("ipInReceives"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(1500 * sim::kMillisecond);
  // All three variables changed, but only one datagram per interval went out.
  EXPECT_LE(server_->updates_sent(), 2u);
  EXPECT_GE(client_->updates_received(), 1u);
  EXPECT_TRUE(client_->GetValue(Id("bytes_rx")).has_value());
}

TEST_F(EemTest, ClientTalksToMultipleServers) {
  // A second EEM server on the wired host.
  EemServerConfig cfg;
  cfg.check_interval = 200 * sim::kMillisecond;
  cfg.update_interval = sim::kSecond;
  EemServer wired_server(&scenario_->wired_host(), cfg);

  VariableId wired_id;
  wired_id.name = "sysName";
  wired_id.server = scenario_->wired_addr();
  client_->Register(wired_id, Attr::Always(NotifyMode::kPeriodic));
  client_->Register(Id("sysName"), Attr::Always(NotifyMode::kPeriodic));
  scenario_->sim().RunFor(3 * sim::kSecond);
  EXPECT_EQ(client_->GetValue(wired_id), Value(std::string("wired-host")));
  EXPECT_EQ(client_->GetValue(Id("sysName")), Value(std::string("gateway")));
}

}  // namespace
}  // namespace comma::monitor

#include "src/monitor/value.h"

#include <gtest/gtest.h>

namespace comma::monitor {
namespace {

TEST(ValueTest, TypesReportCorrectly) {
  EXPECT_EQ(TypeOf(Value(int64_t{5})), ValueType::kLong);
  EXPECT_EQ(TypeOf(Value(2.5)), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), ValueType::kString);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(ValueToString(Value(int64_t{-7})), "-7");
  EXPECT_EQ(ValueToString(Value(std::string("text"))), "text");
  EXPECT_EQ(ValueToString(Value(1.5)), "1.5");
}

TEST(ValueTest, SerializationRoundTrips) {
  for (const Value& v : {Value(int64_t{-123456789}), Value(3.14159), Value(std::string("hello")),
                         Value(int64_t{0}), Value(std::string(""))}) {
    util::Bytes buf;
    util::ByteWriter w(&buf);
    WriteValue(w, v);
    util::ByteReader r(buf);
    auto back = ReadValue(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, v);
  }
}

TEST(ValueTest, ReadValueRejectsGarbage) {
  util::Bytes buf = {99, 0, 0};
  util::ByteReader r(buf);
  EXPECT_FALSE(ReadValue(r).has_value());
}

struct RangeCase {
  Op op;
  int64_t lo;
  int64_t hi;
  int64_t value;
  bool expected;
};

class InRangeTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(InRangeTest, EvaluatesCorrectly) {
  const RangeCase& c = GetParam();
  Attr attr = Attr::Range(c.op, c.lo, c.hi);
  EXPECT_EQ(InRange(Value(c.value), attr), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Operators, InRangeTest,
    ::testing::Values(
        RangeCase{Op::kGt, 10, 0, 11, true}, RangeCase{Op::kGt, 10, 0, 10, false},
        RangeCase{Op::kGte, 10, 0, 10, true}, RangeCase{Op::kGte, 10, 0, 9, false},
        RangeCase{Op::kLt, 10, 0, 9, true}, RangeCase{Op::kLt, 10, 0, 10, false},
        RangeCase{Op::kLte, 10, 0, 10, true}, RangeCase{Op::kLte, 10, 0, 11, false},
        RangeCase{Op::kEq, 10, 0, 10, true}, RangeCase{Op::kEq, 10, 0, 11, false},
        RangeCase{Op::kNeq, 10, 0, 11, true}, RangeCase{Op::kNeq, 10, 0, 10, false},
        // The thesis's Fig. 6.2 example: interval [0, 20] with COMMA_IN.
        RangeCase{Op::kIn, 0, 20, 10, true}, RangeCase{Op::kIn, 0, 20, 0, true},
        RangeCase{Op::kIn, 0, 20, 20, true}, RangeCase{Op::kIn, 0, 20, 21, false},
        RangeCase{Op::kOut, 0, 20, 21, true}, RangeCase{Op::kOut, 0, 20, 10, false}));

TEST(ValueTest, AnyMatchesEverything) {
  EXPECT_TRUE(InRange(Value(int64_t{42}), Attr::Always()));
  EXPECT_TRUE(InRange(Value(std::string("s")), Attr::Always()));
}

TEST(ValueTest, MixedNumericTypesCompare) {
  Attr attr = Attr::Unary(Op::kGt, 1.5);
  EXPECT_TRUE(InRange(Value(int64_t{2}), attr));
  EXPECT_FALSE(InRange(Value(int64_t{1}), attr));
}

TEST(ValueTest, StringsOnlySupportEquality) {
  // §6.3.2: type checking restricts strings to COMMA_EQ / COMMA_NEQ.
  Attr eq = Attr::Unary(Op::kEq, std::string("up"));
  EXPECT_TRUE(InRange(Value(std::string("up")), eq));
  EXPECT_FALSE(InRange(Value(std::string("down")), eq));
  Attr neq = Attr::Unary(Op::kNeq, std::string("up"));
  EXPECT_TRUE(InRange(Value(std::string("down")), neq));
  // Ordering operators on strings: never in range.
  Attr gt = Attr::Unary(Op::kGt, std::string("a"));
  EXPECT_FALSE(InRange(Value(std::string("b")), gt));
  // Comparing a string against a numeric bound: never in range.
  Attr num = Attr::Unary(Op::kEq, int64_t{1});
  EXPECT_FALSE(InRange(Value(std::string("1")), num));
}

TEST(ValueTest, VariableIdFormatting) {
  VariableId id;
  id.name = "ifInOctets";
  id.index = 2;
  id.server = net::Ipv4Address(10, 0, 0, 1);
  EXPECT_EQ(id.ToString(), "ifInOctets[2]@10.0.0.1");
  VariableId local;
  local.name = "sysUpTime";
  EXPECT_EQ(local.ToString(), "sysUpTime@local");
}

TEST(ValueTest, VariableIdOrdering) {
  VariableId a;
  a.name = "a";
  VariableId b;
  b.name = "b";
  EXPECT_TRUE(a < b);
  VariableId a2 = a;
  a2.index = 1;
  EXPECT_TRUE(a < a2);
}

}  // namespace
}  // namespace comma::monitor

#include "src/monitor/protocol.h"

#include <gtest/gtest.h>

namespace comma::monitor {
namespace {

TEST(ProtocolTest, RegisterRoundTrip) {
  RegisterMsg msg;
  msg.reg_id = 42;
  msg.name = "ifInOctets";
  msg.index = 2;
  msg.attr = Attr::Range(Op::kIn, int64_t{0}, int64_t{20}, NotifyMode::kInterrupt);
  auto decoded = DecodeRegister(EncodeRegister(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reg_id, 42u);
  EXPECT_EQ(decoded->name, "ifInOctets");
  EXPECT_EQ(decoded->index, 2u);
  EXPECT_EQ(decoded->attr.op, Op::kIn);
  EXPECT_EQ(decoded->attr.mode, NotifyMode::kInterrupt);
  EXPECT_EQ(decoded->attr.lbound, Value(int64_t{0}));
  EXPECT_EQ(decoded->attr.ubound, Value(int64_t{20}));
}

TEST(ProtocolTest, DeregisterRoundTrip) {
  auto decoded = DecodeDeregister(EncodeDeregister({77}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reg_id, 77u);
}

TEST(ProtocolTest, NotifyRoundTrip) {
  NotifyMsg msg;
  msg.reg_id = 5;
  msg.value = Value(std::string("eth0 down"));
  auto decoded = DecodeNotify(EncodeNotify(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reg_id, 5u);
  EXPECT_EQ(decoded->value, msg.value);
}

TEST(ProtocolTest, UpdateBatchRoundTrip) {
  UpdateMsg msg;
  msg.items.push_back({1, Value(int64_t{100}), true});
  msg.items.push_back({2, Value(0.5), false});
  msg.items.push_back({3, Value(std::string("x")), true});
  auto decoded = DecodeUpdate(EncodeUpdate(msg));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->items.size(), 3u);
  EXPECT_EQ(decoded->items[0].reg_id, 1u);
  EXPECT_TRUE(decoded->items[0].in_range);
  EXPECT_EQ(decoded->items[1].value, Value(0.5));
  EXPECT_FALSE(decoded->items[1].in_range);
}

TEST(ProtocolTest, EmptyUpdateRoundTrip) {
  auto decoded = DecodeUpdate(EncodeUpdate({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->items.empty());
}

TEST(ProtocolTest, PeekTypeIdentifiesMessages) {
  EXPECT_EQ(PeekType(EncodeRegister({})), MsgType::kRegister);
  EXPECT_EQ(PeekType(EncodeDeregister({})), MsgType::kDeregister);
  EXPECT_EQ(PeekType(EncodeDeregisterAll()), MsgType::kDeregisterAll);
  EXPECT_EQ(PeekType(EncodeNotify({})), MsgType::kNotify);
  EXPECT_EQ(PeekType(EncodeUpdate({})), MsgType::kUpdate);
  EXPECT_FALSE(PeekType({}).has_value());
  EXPECT_FALSE(PeekType({0x63}).has_value());
}

TEST(ProtocolTest, DecodersRejectWrongType) {
  EXPECT_FALSE(DecodeRegister(EncodeNotify({})).has_value());
  EXPECT_FALSE(DecodeNotify(EncodeUpdate({})).has_value());
}

TEST(ProtocolTest, DecodersRejectTruncation) {
  auto full = EncodeRegister({9, "sysUpTime", 0, Attr::Always()});
  for (size_t cut = 1; cut < full.size(); ++cut) {
    util::Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeRegister(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, UpdatesAreLean) {
  // §6.1.2: monitor traffic must stay small. A one-variable update fits in
  // a few dozen bytes.
  UpdateMsg msg;
  msg.items.push_back({1, Value(int64_t{12345}), true});
  EXPECT_LT(EncodeUpdate(msg).size(), 32u);
}

}  // namespace
}  // namespace comma::monitor

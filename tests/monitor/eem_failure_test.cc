// EEM failure handling: malformed datagrams, unknown variables, lossy
// transport, and client/server lifecycle edges.
#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"
#include "src/sim/random.h"

namespace comma::monitor {
namespace {

class EemFailureTest : public ::testing::Test {
 protected:
  EemFailureTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    EemServerConfig server_cfg;
    server_cfg.check_interval = 200 * sim::kMillisecond;
    server_cfg.update_interval = 500 * sim::kMillisecond;
    server_ = std::make_unique<EemServer>(&scenario_->gateway(), server_cfg);
  }

  VariableId GatewayVar(const std::string& name, uint32_t index = 0) {
    VariableId id;
    id.name = name;
    id.index = index;
    id.server = scenario_->gateway_wireless_addr();
    return id;
  }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<EemServer> server_;
};

TEST_F(EemFailureTest, ServerIgnoresGarbageDatagrams) {
  auto socket = scenario_->mobile_host().udp().Bind(0);
  sim::Random rng(99);
  for (int i = 0; i < 50; ++i) {
    util::Bytes junk(rng.NextBelow(64));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    socket->SendTo(scenario_->gateway_wireless_addr(), kEemPort, std::move(junk));
  }
  scenario_->sim().RunFor(3 * sim::kSecond);
  // Server is still healthy and answers real registrations.
  EemClient client(&scenario_->mobile_host());
  client.Register(GatewayVar("sysUpTime"), Attr::Always());
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_TRUE(client.GetValue(GatewayVar("sysUpTime")).has_value());
  EXPECT_EQ(server_->RegistrationCount(), 1u);
}

TEST_F(EemFailureTest, TruncatedRegisterIsRejected) {
  auto socket = scenario_->mobile_host().udp().Bind(0);
  util::Bytes full = EncodeRegister({1, "sysUpTime", 0, Attr::Always()});
  for (size_t cut = 1; cut + 1 < full.size(); cut += 3) {
    util::Bytes truncated(full.begin(), full.begin() + static_cast<long>(cut));
    socket->SendTo(scenario_->gateway_wireless_addr(), kEemPort, std::move(truncated));
  }
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(server_->RegistrationCount(), 0u);
}

TEST_F(EemFailureTest, ClientIgnoresGarbageDatagrams) {
  EemClient client(&scenario_->mobile_host());
  client.Register(GatewayVar("sysUpTime"), Attr::Always());
  scenario_->sim().RunFor(sim::kSecond);
  // Blast the client's port with junk from the gateway side... the client
  // port is private; instead verify it survives junk arriving as replies by
  // registering against a "server" that is actually an echo of garbage.
  auto junk_server = scenario_->wired_host().udp().Bind(kEemPort);
  junk_server->set_on_receive([&](const util::Bytes&, const udp::UdpEndpoint& from) {
    junk_server->SendTo(from.addr, from.port, util::Bytes{0xde, 0xad, 0xbe, 0xef});
    junk_server->SendTo(from.addr, from.port, util::Bytes{});
    junk_server->SendTo(from.addr, from.port, util::Bytes{4});  // Truncated Notify.
  });
  VariableId bogus;
  bogus.name = "x";
  bogus.server = scenario_->wired_addr();
  client.Register(bogus, Attr::Always());
  scenario_->sim().RunFor(3 * sim::kSecond);
  // Legit traffic still flows.
  EXPECT_TRUE(client.GetValue(GatewayVar("sysUpTime")).has_value());
}

TEST_F(EemFailureTest, UnknownVariableRegistrationNeverNotifies) {
  EemClient client(&scenario_->mobile_host());
  int callbacks = 0;
  client.SetCallback([&](const VariableId&, const Value&) { ++callbacks; });
  client.Register(GatewayVar("noSuchMetric"), Attr::Always(NotifyMode::kInterrupt));
  scenario_->sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(callbacks, 0);
  EXPECT_FALSE(client.GetValue(GatewayVar("noSuchMetric")).has_value());
  // The registration exists but harmlessly yields nothing.
  EXPECT_EQ(server_->RegistrationCount(), 1u);
}

TEST_F(EemFailureTest, OneShotForUnknownVariableStillReplies) {
  EemClient client(&scenario_->mobile_host());
  std::optional<Value> result;
  client.GetValueOnce(GatewayVar("noSuchMetric"),
                      [&](const VariableId&, const Value& v) { result = v; });
  scenario_->sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(result.has_value());  // The poll completes (empty string value).
  EXPECT_EQ(*result, Value(std::string("")));
}

TEST_F(EemFailureTest, UpdatesSurviveLossyWireless) {
  scenario_->wireless_link().SetLossProbability(0.3);
  EemClient client(&scenario_->mobile_host());
  client.Register(GatewayVar("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  // Over 30 s with 500 ms update periods, enough updates survive 30% loss.
  scenario_->sim().RunFor(30 * sim::kSecond);
  EXPECT_TRUE(client.GetValue(GatewayVar("sysUpTime")).has_value());
  EXPECT_GT(client.updates_received(), 5u);
}

TEST_F(EemFailureTest, ReRegistrationReplacesAttributes) {
  EemClient client(&scenario_->mobile_host());
  client.Register(GatewayVar("sysUpTime"), Attr::Unary(Op::kLt, int64_t{-1}));
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_FALSE(client.IsInRange(GatewayVar("sysUpTime")));
  // Replace with an always-match attribute: same reg id, new range.
  client.Register(GatewayVar("sysUpTime"), Attr::Always());
  scenario_->sim().RunFor(2 * sim::kSecond);
  EXPECT_TRUE(client.IsInRange(GatewayVar("sysUpTime")));
  EXPECT_EQ(server_->RegistrationCount(), 1u);
}

TEST_F(EemFailureTest, ServerDestructionStopsTimers) {
  EemClient client(&scenario_->mobile_host());
  client.Register(GatewayVar("sysUpTime"), Attr::Always());
  scenario_->sim().RunFor(sim::kSecond);
  server_.reset();  // Tear the server down mid-session.
  scenario_->sim().RunFor(5 * sim::kSecond);  // Must not crash or fire timers.
  SUCCEED();
}

}  // namespace
}  // namespace comma::monitor

// Proxy mobility (thesis §5.1.1, §10.2.3): Service Proxies merged into the
// foreign agents, with services handed off when the mobile moves.
#include "src/mobileip/proxy_handoff.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/filters/media_filters.h"
#include "src/filters/standard_set.h"
#include "src/mobileip/scenario.h"

namespace comma::mobileip {
namespace {

class ProxyHandoffTest : public ::testing::Test {
 protected:
  ProxyHandoffTest() : scenario_(Config()) {
    sp1_ = std::make_unique<proxy::ServiceProxy>(&scenario_.fa1_router(),
                                                 filters::StandardRegistry());
    sp2_ = std::make_unique<proxy::ServiceProxy>(&scenario_.fa2_router(),
                                                 filters::StandardRegistry());
    manager_.RegisterProxy(scenario_.fa1_addr(), sp1_.get());
    manager_.RegisterProxy(scenario_.fa2_addr(), sp2_.get());
  }

  static MobileIpConfig Config() {
    MobileIpConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }

  proxy::StreamKey ToMobile(uint16_t port) {
    return proxy::StreamKey{net::Ipv4Address(), 0, scenario_.mobile_home_addr(), port};
  }

  MobileIpScenario scenario_;
  std::unique_ptr<proxy::ServiceProxy> sp1_;
  std::unique_ptr<proxy::ServiceProxy> sp2_;
  ProxyHandoffManager manager_;
};

TEST_F(ProxyHandoffTest, FaProxyInterceptsTunneledTraffic) {
  // The SP on the FA router sees the *decapsulated* stream: the FA removes
  // the tunnel header, then re-injects — and the SP taps transit packets.
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  std::string error;
  ASSERT_TRUE(sp1_->AddService("meter", ToMobile(80), {}, &error)) << error;

  apps::BulkSink sink(&scenario_.mobile(), 80);
  apps::BulkSender sender(&scenario_.correspondent(), scenario_.mobile_home_addr(), 80,
                          apps::PatternPayload(20'000));
  scenario_.sim().RunFor(30 * sim::kSecond);
  ASSERT_EQ(sink.bytes_received(), 20'000u);
  EXPECT_GT(sp1_->stats().packets_inspected, 20u);
}

TEST_F(ProxyHandoffTest, ServicesFollowTheMobile) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  // A blocking service proves which proxy is in charge.
  std::string error;
  ASSERT_TRUE(sp1_->AddService("rdrop", ToMobile(81), {"100"}, &error)) << error;
  ASSERT_TRUE(sp1_->AddService("meter", ToMobile(82), {}, &error)) << error;

  const int moved = manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(),
                                       scenario_.fa2_addr());
  EXPECT_EQ(moved, 2);
  EXPECT_TRUE(sp1_->services().empty());
  ASSERT_EQ(sp2_->services().size(), 2u);
  EXPECT_EQ(sp2_->services()[0].filter, "rdrop");
  EXPECT_EQ(sp2_->services()[0].args, (std::vector<std::string>{"100"}));

  // The mobile moves; the transferred blocker now operates at FA2.
  scenario_.MoveToForeign2();
  scenario_.sim().RunFor(2 * sim::kSecond);
  apps::BulkSink sink(&scenario_.mobile(), 81);
  apps::BulkSender sender(&scenario_.correspondent(), scenario_.mobile_home_addr(), 81,
                          apps::PatternPayload(5'000));
  scenario_.sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 0u);
  EXPECT_GT(sp2_->stats().packets_dropped, 0u);
}

TEST_F(ProxyHandoffTest, CompositeServiceTransfersInCreationOrder) {
  // tdrop depends on ttsf being attached first; the transfer must preserve
  // that ordering or re-insertion fails.
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  std::string error;
  proxy::StreamKey key{scenario_.correspondent_addr(), 7, scenario_.mobile_home_addr(), 90};
  ASSERT_TRUE(sp1_->AddService("tcp", key, {}, &error)) << error;
  ASSERT_TRUE(sp1_->AddService("ttsf", key, {}, &error)) << error;
  ASSERT_TRUE(sp1_->AddService("tdrop", key, {"50"}, &error)) << error;

  const int moved = manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(),
                                       scenario_.fa2_addr());
  EXPECT_EQ(moved, 3);
  EXPECT_EQ(manager_.stats().services_failed, 0u);
  EXPECT_TRUE(sp2_->FindFilterOnKey(key, "ttsf") != nullptr);
  EXPECT_TRUE(sp2_->FindFilterOnKey(key, "tdrop") != nullptr);
}

TEST_F(ProxyHandoffTest, StreamSurvivesHandoffWithServices) {
  // End-to-end: a long transfer with a meter service keeps flowing across
  // the hand-off, and the service resumes counting at the new proxy.
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  std::string error;
  ASSERT_TRUE(sp1_->AddService("meter", ToMobile(80), {}, &error)) << error;

  apps::BulkSink sink(&scenario_.mobile(), 80);
  apps::BulkSender sender(&scenario_.correspondent(), scenario_.mobile_home_addr(), 80,
                          apps::PatternPayload(600'000));
  scenario_.sim().RunFor(3 * sim::kSecond);
  ASSERT_GT(sink.bytes_received(), 0u);
  ASSERT_LT(sink.bytes_received(), 600'000u);

  // Hand off mid-stream: move the mobile, then the services.
  scenario_.MoveToForeign2();
  manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(), scenario_.fa2_addr());
  scenario_.sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 600'000u);

  auto* meter = dynamic_cast<filters::MeterFilter*>(
      sp2_->FindFilterOnKey(ToMobile(80), "meter"));
  ASSERT_TRUE(meter != nullptr);
  // The transferred meter counted the post-hand-off traffic.
  EXPECT_GT(sp2_->stats().packets_inspected, 0u);
}

TEST_F(ProxyHandoffTest, PlannedHandoffCarriesExportedFilterState) {
  // A live transformed stream hands off mid-transfer: the TTSF's offset map
  // and the tdrop RNG state ride along (docs/robustness.md), so the
  // destination proxy resumes with the source's exact state instead of
  // rebuilding from the wire.
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  std::string error;
  ASSERT_TRUE(sp1_->AddService("launcher", ToMobile(80), {"tcp", "ttsf", "tdrop:0:5"}, &error))
      << error;

  apps::BulkSink sink(&scenario_.mobile(), 80);
  apps::BulkSender sender(&scenario_.correspondent(), scenario_.mobile_home_addr(), 80,
                          apps::PatternPayload(600'000));
  scenario_.sim().RunFor(3 * sim::kSecond);
  ASSERT_GT(sink.bytes_received(), 0u);
  ASSERT_LT(sink.bytes_received(), 600'000u);

  scenario_.MoveToForeign2();
  const int moved = manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(),
                                       scenario_.fa2_addr());
  ASSERT_GT(moved, 0);
  // The per-stream ttsf and tdrop are checkpointable: their state moved.
  EXPECT_GE(manager_.stats().state_transferred, 2u);
  // Accounting invariant: every transferred service either carried state or
  // was explicitly rebuilt.
  EXPECT_EQ(manager_.stats().services_transferred,
            manager_.stats().state_transferred + manager_.stats().state_rebuilt);
  EXPECT_EQ(manager_.stats().services_failed, 0u);

  // The in-flight stream completes through the destination proxy.
  scenario_.sim().RunFor(120 * sim::kSecond);
  EXPECT_EQ(sink.bytes_received(), 600'000u);
}

TEST_F(ProxyHandoffTest, StatelessServicesCountAsRebuilt) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  std::string error;
  // meter keeps no exportable state; the transfer re-creates it fresh.
  ASSERT_TRUE(sp1_->AddService("meter", ToMobile(82), {}, &error)) << error;

  const int moved = manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(),
                                       scenario_.fa2_addr());
  EXPECT_EQ(moved, 1);
  EXPECT_EQ(manager_.stats().state_transferred, 0u);
  EXPECT_EQ(manager_.stats().state_rebuilt, 1u);
  EXPECT_EQ(manager_.stats().services_transferred,
            manager_.stats().state_transferred + manager_.stats().state_rebuilt);
}

TEST_F(ProxyHandoffTest, UnknownCareOfAddressesAreIgnored) {
  EXPECT_EQ(manager_.OnHandoff(scenario_.mobile_home_addr(), net::Ipv4Address(9, 9, 9, 9),
                               scenario_.fa2_addr()),
            0);
  EXPECT_EQ(manager_.OnHandoff(scenario_.mobile_home_addr(), scenario_.fa1_addr(),
                               scenario_.fa1_addr()),
            0);
  EXPECT_EQ(manager_.stats().handoffs, 0u);
}

}  // namespace
}  // namespace comma::mobileip

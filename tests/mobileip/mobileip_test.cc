// Mobile IP end-to-end tests (thesis §2.1): registration, tunneling,
// triangular routing, hand-off with drop vs forward policies.
#include <gtest/gtest.h>

#include "src/mobileip/scenario.h"

namespace comma::mobileip {
namespace {

constexpr net::IpProtocol kProbeProto = net::IpProtocol::kIcmp;

class MobileIpTest : public ::testing::Test {
 protected:
  MobileIpTest() : scenario_(Config()) {}

  static MobileIpConfig Config() {
    MobileIpConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }

  // Counts probe packets delivered to the mobile.
  void ArmProbeCounter() {
    scenario_.mobile().RegisterProtocol(kProbeProto, [this](net::PacketPtr p) {
      ++probes_received_;
      last_probe_ = std::move(p);
    });
  }

  void SendProbe(size_t len = 64) {
    scenario_.correspondent().SendPacket(net::Packet::MakeRaw(
        scenario_.correspondent_addr(), scenario_.mobile_home_addr(), kProbeProto,
        util::Bytes(len, 0x42)));
  }

  MobileIpScenario scenario_;
  int probes_received_ = 0;
  net::PacketPtr last_probe_;
};

TEST_F(MobileIpTest, DeliveryAtHomeNeedsNoTunnel) {
  ArmProbeCounter();
  SendProbe();
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(probes_received_, 1);
  EXPECT_EQ(scenario_.home_agent().stats().packets_tunneled, 0u);
  EXPECT_EQ(scenario_.home_agent().stats().packets_delivered_home, 1u);
}

TEST_F(MobileIpTest, RegistrationCompletesViaForeignAgent) {
  bool registered = false;
  scenario_.client().set_on_registered([&](bool ok) { registered = ok; });
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  EXPECT_TRUE(registered);
  EXPECT_TRUE(scenario_.client().registered());
  EXPECT_EQ(scenario_.client().current_care_of(), scenario_.fa1_addr());
  EXPECT_TRUE(scenario_.home_agent().IsRegisteredAway(scenario_.mobile_home_addr()));
  EXPECT_TRUE(scenario_.fa1().IsVisiting(scenario_.mobile_home_addr()));
  EXPECT_EQ(scenario_.fa1().stats().registrations_relayed, 1u);
  EXPECT_GT(scenario_.client().stats().last_handoff_latency, 0);
}

TEST_F(MobileIpTest, PacketsAreTunneledToForeignNetwork) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  ArmProbeCounter();
  SendProbe();
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(probes_received_, 1);
  EXPECT_EQ(scenario_.home_agent().stats().packets_tunneled, 1u);
  EXPECT_EQ(scenario_.fa1().stats().packets_decapsulated, 1u);
  // The delivered packet is the decapsulated original.
  ASSERT_TRUE(last_probe_ != nullptr);
  EXPECT_EQ(last_probe_->ip().src, scenario_.correspondent_addr());
  EXPECT_FALSE(last_probe_->has_inner());
}

TEST_F(MobileIpTest, TriangularRoutingIsAsymmetric) {
  // Mobile -> correspondent goes direct (skips the HA); the reverse path
  // crosses the home agent (Fig. 2.1).
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  int at_correspondent = 0;
  scenario_.correspondent().RegisterProtocol(kProbeProto,
                                             [&](net::PacketPtr) { ++at_correspondent; });
  const uint64_t ha_rx_before = scenario_.ha_router().stats().ip_in_receives;
  scenario_.mobile().SendPacket(net::Packet::MakeRaw(scenario_.mobile_home_addr(),
                                                     scenario_.correspondent_addr(), kProbeProto,
                                                     util::Bytes(64, 1)));
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(at_correspondent, 1);
  EXPECT_EQ(scenario_.ha_router().stats().ip_in_receives, ha_rx_before);
}

TEST_F(MobileIpTest, TcpWorksAcrossTunnel) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  util::Bytes sink;
  scenario_.mobile().tcp().Listen(80, [&](tcp::TcpConnection* c) {
    c->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  tcp::TcpConnection* client =
      scenario_.correspondent().tcp().Connect(scenario_.mobile_home_addr(), 80);
  client->set_on_connected([client] {
    util::Bytes data(20'000, 0x33);
    client->Send(data);
    client->Close();
  });
  scenario_.sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(sink.size(), 20'000u);
}

TEST_F(MobileIpTest, HandoffBetweenForeignNetworks) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  ASSERT_EQ(scenario_.client().current_care_of(), scenario_.fa1_addr());
  scenario_.MoveToForeign2();
  scenario_.sim().RunFor(2 * sim::kSecond);
  EXPECT_EQ(scenario_.client().current_care_of(), scenario_.fa2_addr());
  EXPECT_TRUE(scenario_.fa2().IsVisiting(scenario_.mobile_home_addr()));
  EXPECT_FALSE(scenario_.fa1().IsVisiting(scenario_.mobile_home_addr()));

  ArmProbeCounter();
  SendProbe();
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(probes_received_, 1);
  EXPECT_EQ(scenario_.fa2().stats().packets_decapsulated, 1u);
}

TEST_F(MobileIpTest, HandoffMidStreamLosesPackets) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  ArmProbeCounter();
  // Burst of probes, move mid-stream: packets tunneled toward FA1 around
  // the hand-off die on the downed wireless link or at the old FA.
  for (int i = 0; i < 50; ++i) {
    scenario_.sim().Schedule(i * 5 * sim::kMillisecond, [this] { SendProbe(); });
  }
  scenario_.sim().Schedule(100 * sim::kMillisecond, [this] { scenario_.MoveToForeign2(); });
  scenario_.sim().RunFor(10 * sim::kSecond);
  EXPECT_LT(probes_received_, 50);
  EXPECT_GT(probes_received_, 0);
}

// A "straggler": a packet the HA tunneled toward the old FA before the new
// registration reached it, arriving after the binding moved (§2.1).
TEST_F(MobileIpTest, DropPolicyDiscardsStragglers) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  scenario_.MoveToForeign2();
  scenario_.sim().RunFor(2 * sim::kSecond);
  ArmProbeCounter();
  auto inner = net::Packet::MakeRaw(scenario_.correspondent_addr(),
                                    scenario_.mobile_home_addr(), kProbeProto,
                                    util::Bytes(64, 0x42));
  scenario_.correspondent().SendPacket(
      net::Packet::Encapsulate(std::move(inner), scenario_.ha_addr(), scenario_.fa1_addr()));
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(probes_received_, 0);
  EXPECT_EQ(scenario_.fa1().stats().packets_dropped, 1u);
}

TEST_F(MobileIpTest, ForwardPolicyReTunnelsStragglers) {
  MobileIpConfig cfg = Config();
  cfg.handoff_policy = HandoffPolicy::kForward;
  MobileIpScenario s(cfg);
  int received = 0;
  s.mobile().RegisterProtocol(kProbeProto, [&](net::PacketPtr) { ++received; });
  s.MoveToForeign1();
  s.sim().RunFor(2 * sim::kSecond);
  s.MoveToForeign2();
  s.sim().RunFor(2 * sim::kSecond);
  auto inner = net::Packet::MakeRaw(s.correspondent_addr(), s.mobile_home_addr(), kProbeProto,
                                    util::Bytes(64, 0x42));
  s.correspondent().SendPacket(
      net::Packet::Encapsulate(std::move(inner), s.ha_addr(), s.fa1_addr()));
  s.sim().RunFor(sim::kSecond);
  EXPECT_EQ(s.fa1().stats().packets_forwarded, 1u);
  EXPECT_EQ(received, 1);
}

TEST_F(MobileIpTest, ReturnHomeDeregisters) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  ASSERT_TRUE(scenario_.home_agent().IsRegisteredAway(scenario_.mobile_home_addr()));
  scenario_.MoveHome();
  scenario_.sim().RunFor(2 * sim::kSecond);
  EXPECT_FALSE(scenario_.home_agent().IsRegisteredAway(scenario_.mobile_home_addr()));
  EXPECT_EQ(scenario_.home_agent().stats().deregistrations, 1u);
  ArmProbeCounter();
  SendProbe();
  scenario_.sim().RunFor(sim::kSecond);
  EXPECT_EQ(probes_received_, 1);
  EXPECT_EQ(scenario_.home_agent().stats().packets_tunneled, 0u);
}

TEST_F(MobileIpTest, RegistrationsRenewBeforeExpiry) {
  scenario_.MoveToForeign1();
  scenario_.sim().RunFor(2 * sim::kSecond);
  const auto sent_before = scenario_.client().stats().registrations_sent;
  // Default lifetime 60 s, renewal at 80%: two more registrations in 100 s.
  scenario_.sim().RunFor(100 * sim::kSecond);
  EXPECT_GE(scenario_.client().stats().registrations_sent, sent_before + 2);
  EXPECT_TRUE(scenario_.home_agent().IsRegisteredAway(scenario_.mobile_home_addr()));
}

TEST_F(MobileIpTest, UnknownMobileRegistrationDenied) {
  // A registration for a home address the HA does not serve is refused
  // with kDeniedUnknownHome.
  auto socket = scenario_.correspondent().udp().Bind(0);
  std::optional<ReplyCode> code;
  socket->set_on_receive([&](const util::Bytes& data, const udp::UdpEndpoint&) {
    auto reply = DecodeRegistrationReply(data);
    if (reply.has_value()) {
      code = reply->code;
    }
  });
  RegistrationRequest request;
  request.home_address = net::Ipv4Address(99, 9, 9, 9);
  request.home_agent = scenario_.ha_addr();
  request.care_of_address = scenario_.correspondent_addr();
  request.lifetime_seconds = 60;
  request.id = 1;
  socket->SendTo(scenario_.ha_addr(), kRegistrationPort, Encode(request));
  scenario_.sim().RunFor(sim::kSecond);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, ReplyCode::kDeniedUnknownHome);
}

TEST_F(MobileIpTest, MessageRoundTrips) {
  RegistrationRequest req;
  req.home_address = net::Ipv4Address(10, 1, 0, 50);
  req.home_agent = net::Ipv4Address(10, 1, 0, 1);
  req.care_of_address = net::Ipv4Address(10, 2, 0, 1);
  req.lifetime_seconds = 60;
  req.id = 0xdeadbeef12345678ULL;
  auto decoded = DecodeRegistrationRequest(Encode(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->home_address, req.home_address);
  EXPECT_EQ(decoded->id, req.id);

  BindingUpdate bu;
  bu.home_address = req.home_address;
  bu.new_care_of = net::Ipv4Address(10, 3, 0, 1);
  auto bu2 = DecodeBindingUpdate(Encode(bu));
  ASSERT_TRUE(bu2.has_value());
  EXPECT_EQ(bu2->new_care_of, bu.new_care_of);

  EXPECT_FALSE(DecodeRegistrationRequest(Encode(bu)).has_value());
  EXPECT_FALSE(PeekType({}).has_value());
}

}  // namespace
}  // namespace comma::mobileip

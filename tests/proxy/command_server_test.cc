// Robustness of the SP command server's wire protocol (§5.3): framing,
// pipelining, concurrent clients, and abrupt disconnects.
#include "src/proxy/command_server.h"

#include <gtest/gtest.h>

#include "src/util/strings.h"
#include "src/util/bytes.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

class CommandServerTest : public ProxyFixture {
 protected:
  CommandServerTest() {
    server_ = std::make_unique<CommandServer>(&scenario().gateway().tcp(), &sp());
  }

  // A raw TCP client (not the SpClient) so tests control framing precisely.
  struct RawClient {
    tcp::TcpConnection* conn = nullptr;
    std::string received;
    bool connected = false;
  };

  std::shared_ptr<RawClient> Connect() {
    auto client = std::make_shared<RawClient>();
    client->conn = scenario().mobile_host().tcp().Connect(
        scenario().gateway_wireless_addr(), kCommandPort);
    client->conn->set_on_connected([client] { client->connected = true; });
    client->conn->set_on_data([client](const util::Bytes& data) {
      client->received.append(comma::util::AsCharPtr(data.data()), data.size());
    });
    sim().RunFor(sim::kSecond);
    EXPECT_TRUE(client->connected);
    return client;
  }

  void SendRaw(const std::shared_ptr<RawClient>& client, const std::string& text) {
    client->conn->Send(comma::util::AsBytePtr(text.data()), text.size());
    sim().RunFor(sim::kSecond);
  }

  static int CountMarkers(const std::string& text) {
    int count = 0;
    size_t pos = 0;
    while ((pos = text.find(".\n", pos)) != std::string::npos) {
      // Only count markers at line start.
      if (pos == 0 || text[pos - 1] == '\n') {
        ++count;
      }
      pos += 2;
    }
    return count;
  }

  std::unique_ptr<CommandServer> server_;
};

TEST_F(CommandServerTest, SingleCommandGetsMarkedResponse) {
  auto client = Connect();
  SendRaw(client, "load rdrop\n");
  EXPECT_EQ(client->received, "rdrop\n.\n");
}

TEST_F(CommandServerTest, PipelinedCommandsAnswerInOrder) {
  auto client = Connect();
  SendRaw(client, "load tcp\nload rdrop\nload wsize\n");
  EXPECT_EQ(client->received, "tcp\n.\nrdrop\n.\nwsize\n.\n");
  EXPECT_EQ(server_->commands_executed(), 3u);
}

TEST_F(CommandServerTest, CommandSplitAcrossSegmentsReassembles) {
  auto client = Connect();
  SendRaw(client, "load rd");
  EXPECT_TRUE(client->received.empty());  // Incomplete line: no response yet.
  SendRaw(client, "rop\n");
  EXPECT_EQ(client->received, "rdrop\n.\n");
}

TEST_F(CommandServerTest, CrlfLineEndingsAccepted) {
  auto client = Connect();
  SendRaw(client, "load rdrop\r\n");
  EXPECT_EQ(client->received, "rdrop\n.\n");
}

TEST_F(CommandServerTest, EmptyLinesAreSilentButMarked) {
  auto client = Connect();
  SendRaw(client, "\n\n");
  EXPECT_EQ(client->received, ".\n.\n");
}

TEST_F(CommandServerTest, MalformedCommandsReportErrorsNotCrashes) {
  auto client = Connect();
  for (const char* bad :
       {"add\n", "add rdrop notanip 0 0.0.0.0 0\n", "blargh blah\n", "load\n",
        "delete rdrop 1 2 3\n", "service bogus\n"}) {
    client->received.clear();
    SendRaw(client, bad);
    EXPECT_EQ(CountMarkers(client->received), 1) << bad;
  }
}

TEST_F(CommandServerTest, TwoConcurrentClientsAreIndependent) {
  auto a = Connect();
  auto b = Connect();
  SendRaw(a, "load rdrop\n");
  SendRaw(b, "report\n");
  EXPECT_EQ(a->received, "rdrop\n.\n");
  // B sees the report (rdrop now loaded) but none of A's responses.
  EXPECT_NE(b->received.find("rdrop"), std::string::npos);
  EXPECT_EQ(CountMarkers(b->received), 1);
}

TEST_F(CommandServerTest, ClientDisconnectCleansSession) {
  auto client = Connect();
  SendRaw(client, "load rdrop\n");
  client->conn->Close();
  sim().RunFor(5 * sim::kSecond);
  // A new client works fine afterwards.
  auto again = Connect();
  SendRaw(again, "report rdrop\n");
  EXPECT_NE(again->received.find("rdrop"), std::string::npos);
}

TEST_F(CommandServerTest, LargeReportSpansManySegments) {
  auto client = Connect();
  // Create enough services that the report exceeds several MSS.
  std::string commands = "load meter\n";
  for (int i = 0; i < 200; ++i) {
    commands += util::Format("add meter 10.0.0.99 %d 11.11.10.10 %d\n", 100 + i, 200 + i);
  }
  SendRaw(client, commands);
  client->received.clear();
  SendRaw(client, "report meter\n");
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(CountMarkers(client->received), 1);
  // All 200 keys listed.
  size_t keys = 0;
  size_t pos = 0;
  while ((pos = client->received.find("\t10.0.0.99", pos)) != std::string::npos) {
    ++keys;
    ++pos;
  }
  EXPECT_EQ(keys, 200u);
}

TEST_F(CommandServerTest, CommandsWorkWhileDataPlaneIsBusy) {
  // Control and data share the wireless hop (thesis: control rides the
  // network); commands must still complete under load.
  auto t = StartTransfer(80, Pattern(2'000'000));
  auto client = Connect();
  SendRaw(client, "streams\n");
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(CountMarkers(client->received), 1);
  EXPECT_NE(client->received.find("11.11.10.10 80"), std::string::npos);
}

}  // namespace
}  // namespace comma::proxy

#include "src/proxy/service_proxy.h"

#include <gtest/gtest.h>

#include "src/filters/media_filters.h"
#include "src/filters/rdrop_filter.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

class ServiceProxyTest : public ProxyFixture {};

TEST_F(ServiceProxyTest, AddServiceRequiresLoadedFilter) {
  std::string error;
  EXPECT_FALSE(sp().AddService("nonexistent", DataKey(1, 2), {}, &error));
  EXPECT_NE(error.find("unknown or unloaded"), std::string::npos);
}

TEST_F(ServiceProxyTest, AddServiceValidatesFilterArgs) {
  std::string error;
  EXPECT_FALSE(sp().AddService("rdrop", DataKey(1, 2), {"150"}, &error));
  EXPECT_NE(error.find("percentage"), std::string::npos);
  // Failed insertion leaves no attachment behind.
  for (const auto& entry : sp().Report("rdrop")) {
    EXPECT_TRUE(entry.keys.empty());
  }
}

TEST_F(ServiceProxyTest, StreamRegistryTracksNewStreams) {
  auto t = StartTransfer(80, Pattern(5000));
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 5000u);
  // Both directions of the transfer appear in the registry.
  bool forward_seen = false;
  bool reverse_seen = false;
  for (const auto& [key, info] : sp().streams()) {
    if (key.dst == scenario().mobile_addr() && key.dst_port == 80) {
      forward_seen = true;
      EXPECT_GT(info.packets, 0u);
      EXPECT_GT(info.bytes, 5000u);
    }
    if (key.src == scenario().mobile_addr() && key.src_port == 80) {
      reverse_seen = true;
    }
  }
  EXPECT_TRUE(forward_seen);
  EXPECT_TRUE(reverse_seen);
}

TEST_F(ServiceProxyTest, RdropServiceDropsPackets) {
  // Drop 100% of packets toward the mobile: the connection cannot form.
  MustAdd("rdrop", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 81}, {"100"});
  auto t = StartTransfer(81, Pattern(1000));
  sim().RunFor(10 * sim::kSecond);
  EXPECT_TRUE(t->received.empty());
  EXPECT_GT(sp().stats().packets_dropped, 0u);
}

TEST_F(ServiceProxyTest, DeleteServiceRestoresFlow) {
  MustAdd("rdrop", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 82}, {"100"});
  auto t = StartTransfer(82, Pattern(1000));
  sim().RunFor(5 * sim::kSecond);
  EXPECT_TRUE(t->received.empty());
  sp().DeleteService("rdrop", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 82});
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 1000u);
}

TEST_F(ServiceProxyTest, WildcardServiceAppliesToMatchingStreamsOnly) {
  MustAdd("rdrop", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 83}, {"100"});
  auto blocked = StartTransfer(83, Pattern(500));
  auto open = StartTransfer(84, Pattern(500));
  sim().RunFor(20 * sim::kSecond);
  EXPECT_TRUE(blocked->received.empty());
  EXPECT_EQ(open->received.size(), 500u);
}

TEST_F(ServiceProxyTest, ReportListsLoadedFiltersAndKeys) {
  MustAdd("rdrop", DataKey(7, 1169), {"50"});
  auto report = sp().Report();
  bool rdrop_found = false;
  for (const auto& entry : report) {
    if (entry.filter == "rdrop") {
      rdrop_found = true;
      ASSERT_EQ(entry.keys.size(), 1u);
      EXPECT_EQ(entry.keys[0], "10.0.0.99 7 -> 11.11.10.10 1169");
    }
  }
  EXPECT_TRUE(rdrop_found);
  // Filtered report.
  auto only = sp().Report("rdrop");
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].filter, "rdrop");
}

TEST_F(ServiceProxyTest, LauncherAppliesServicesToNewStreams) {
  MustAdd("launcher", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 0},
          {"tcp", "meter"});
  auto t = StartTransfer(85, Pattern(200'000));
  // Sample mid-transfer (the tcp filter removes everything after close).
  sim().RunFor(500 * sim::kMillisecond);
  ASSERT_LT(t->received.size(), 200'000u);
  bool tcp_attached = false;
  for (const auto& entry : sp().Report("tcp")) {
    tcp_attached = !entry.keys.empty();
  }
  EXPECT_TRUE(tcp_attached);
  auto* meter = sp().FindFilterOnKey(
      StreamKey{scenario().wired_addr(), t->client->local_port(), scenario().mobile_addr(), 85},
      "meter");
  EXPECT_TRUE(meter != nullptr);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 200'000u);
}

TEST_F(ServiceProxyTest, TcpFilterRemovesStreamStateOnClose) {
  MustAdd("launcher", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 86}, {"tcp"});
  auto t = StartTransfer(86, Pattern(1000));
  sim().RunFor(10 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  // After teardown grace, the tcp filter removed the stream's filters.
  sim().RunFor(10 * sim::kSecond);
  for (const auto& entry : sp().Report("tcp")) {
    EXPECT_TRUE(entry.keys.empty()) << "stale: " << entry.keys[0];
  }
}

TEST_F(ServiceProxyTest, ProxyCountsPacketsInspected) {
  auto t = StartTransfer(87, Pattern(5000));
  sim().RunFor(10 * sim::kSecond);
  EXPECT_GT(sp().stats().packets_inspected, 10u);
  EXPECT_GT(sp().stats().streams_seen, 1u);
}

TEST_F(ServiceProxyTest, FindFilterOnKeyLocatesInstance) {
  MustAdd("rdrop", DataKey(1, 2), {"10"});
  EXPECT_TRUE(sp().FindFilterOnKey(DataKey(1, 2), "rdrop") != nullptr);
  EXPECT_EQ(sp().FindFilterOnKey(DataKey(1, 3), "rdrop"), nullptr);
  EXPECT_EQ(sp().FindFilterOnKey(DataKey(1, 2), "wsize"), nullptr);
}

TEST_F(ServiceProxyTest, RemoveStreamDetachesEverything) {
  MustAdd("rdrop", DataKey(5, 6), {"10"});
  MustAdd("meter", DataKey(5, 6));
  sp().RemoveStream(DataKey(5, 6));
  EXPECT_EQ(sp().FindFilterOnKey(DataKey(5, 6), "rdrop"), nullptr);
  EXPECT_EQ(sp().FindFilterOnKey(DataKey(5, 6), "meter"), nullptr);
}

TEST_F(ServiceProxyTest, ChecksumsRemainValidAfterFilterModification) {
  // wsize clamps the window (mutation); the tcp filter must fix checksums so
  // end hosts never see a corrupt segment. Verify via a tap downstream.
  class VerifyTap : public net::PacketTap {
   public:
    net::TapVerdict OnPacket(net::PacketPtr& p, const net::TapContext&) override {
      ++count;
      if (!p->VerifyChecksums()) {
        ++bad;
      }
      return net::TapVerdict::kPass;
    }
    int count = 0;
    int bad = 0;
  } tap;
  scenario().mobile_host().AddTap(&tap);

  auto key = StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 88};
  MustAdd("launcher", key, {"tcp", "wsize:clamp:4096"});
  auto t = StartTransfer(88, Pattern(20000));
  sim().RunFor(30 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 20000u);
  EXPECT_GT(tap.count, 10);
  EXPECT_EQ(tap.bad, 0);
}

}  // namespace
}  // namespace comma::proxy

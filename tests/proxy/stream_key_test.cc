#include "src/proxy/stream_key.h"

#include <gtest/gtest.h>

namespace comma::proxy {
namespace {

StreamKey MakeKey(const char* src, uint16_t sp, const char* dst, uint16_t dp) {
  return StreamKey{*net::Ipv4Address::Parse(src), sp, *net::Ipv4Address::Parse(dst), dp};
}

TEST(StreamKeyTest, FromTcpPacket) {
  net::TcpHeader h;
  h.src_port = 7;
  h.dst_port = 1169;
  auto p = net::Packet::MakeTcp(net::Ipv4Address(11, 11, 10, 99), net::Ipv4Address(11, 11, 10, 10),
                                h, {});
  StreamKey key = StreamKey::FromPacket(*p);
  EXPECT_EQ(key.ToString(), "11.11.10.99 7 -> 11.11.10.10 1169");
}

TEST(StreamKeyTest, FromUdpPacket) {
  auto p = net::Packet::MakeUdp(net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 0, 2), 53,
                                7070, {});
  StreamKey key = StreamKey::FromPacket(*p);
  EXPECT_EQ(key.src_port, 53);
  EXPECT_EQ(key.dst_port, 7070);
}

TEST(StreamKeyTest, ParseValid) {
  auto key = StreamKey::Parse({"11.11.10.99", "7", "11.11.10.10", "1169"});
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->ToString(), "11.11.10.99 7 -> 11.11.10.10 1169");
  EXPECT_FALSE(key->IsWildcard());
}

TEST(StreamKeyTest, ParseWildcard) {
  auto key = StreamKey::Parse({"11.11.10.10", "0", "0.0.0.0", "0"});
  ASSERT_TRUE(key.has_value());
  EXPECT_TRUE(key->IsWildcard());
  EXPECT_EQ(key->ToString(), "11.11.10.10 0 -> 0.0.0.0 0");
}

TEST(StreamKeyTest, ParseRejectsMalformed) {
  EXPECT_FALSE(StreamKey::Parse({"1.2.3.4", "7", "bogus", "9"}).has_value());
  EXPECT_FALSE(StreamKey::Parse({"1.2.3.4", "99999", "5.6.7.8", "9"}).has_value());
  EXPECT_FALSE(StreamKey::Parse({"1.2.3.4", "7", "5.6.7.8"}).has_value());
}

TEST(StreamKeyTest, WildcardMatching) {
  StreamKey concrete = MakeKey("11.11.10.99", 7, "11.11.10.10", 1169);
  // Thesis example: destination fixed, everything else blank.
  StreamKey wild = MakeKey("0.0.0.0", 0, "11.11.10.10", 0);
  EXPECT_TRUE(wild.Matches(concrete));
  // Exact keys match themselves.
  EXPECT_TRUE(concrete.Matches(concrete));
  // Mismatched fixed field.
  StreamKey other = MakeKey("0.0.0.0", 0, "11.11.10.11", 0);
  EXPECT_FALSE(other.Matches(concrete));
  // Port-only wild-card matches a well-known protocol (§5.2).
  StreamKey port_wild = MakeKey("0.0.0.0", 0, "0.0.0.0", 1169);
  EXPECT_TRUE(port_wild.Matches(concrete));
  StreamKey wrong_port = MakeKey("0.0.0.0", 0, "0.0.0.0", 80);
  EXPECT_FALSE(wrong_port.Matches(concrete));
}

TEST(StreamKeyTest, ReversedSwapsEndpoints) {
  StreamKey key = MakeKey("11.11.10.99", 7, "11.11.10.10", 1169);
  StreamKey rev = key.Reversed();
  EXPECT_EQ(rev.ToString(), "11.11.10.10 1169 -> 11.11.10.99 7");
  EXPECT_EQ(rev.Reversed(), key);
}

TEST(StreamKeyTest, KeysAreDirectional) {
  StreamKey key = MakeKey("1.1.1.1", 1, "2.2.2.2", 2);
  EXPECT_FALSE(key == key.Reversed());
}

TEST(StreamKeyTest, OrderingIsStrictWeak) {
  StreamKey a = MakeKey("1.1.1.1", 1, "2.2.2.2", 2);
  StreamKey b = MakeKey("1.1.1.1", 1, "2.2.2.2", 3);
  StreamKey c = MakeKey("1.1.1.2", 1, "2.2.2.2", 2);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace comma::proxy

#include "src/proxy/command.h"

#include <gtest/gtest.h>

#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

// The command interface drives a proxy whose registry starts *empty* of
// loaded filters, as the thesis's SP does before `load` commands.
class CommandTest : public ::testing::Test {
 protected:
  CommandTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    FilterRegistry registry;
    filters::RegisterStandardFilters(&registry);
    sp_ = std::make_unique<ServiceProxy>(&scenario_->gateway(), std::move(registry));
    processor_ = std::make_unique<CommandProcessor>(sp_.get());
  }

  std::string Exec(const std::string& line) { return processor_->Execute(line); }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<ServiceProxy> sp_;
  std::unique_ptr<CommandProcessor> processor_;
};

TEST_F(CommandTest, LoadPrintsFilterName) {
  EXPECT_EQ(Exec("load librdrop.so"), "rdrop\n");
  EXPECT_EQ(Exec("load tcp"), "tcp\n");
}

TEST_F(CommandTest, LoadUnknownIsFailSilent) {
  EXPECT_EQ(Exec("load libbogus.so"), "");
}

TEST_F(CommandTest, RemoveIsFailSilent) {
  Exec("load rdrop");
  EXPECT_EQ(Exec("remove rdrop"), "");
  EXPECT_EQ(Exec("remove rdrop"), "");  // Second remove: silent too.
}

TEST_F(CommandTest, AddRequiresLoadedFilter) {
  std::string out = Exec("add rdrop 11.11.10.99 7 11.11.10.10 1169 50");
  EXPECT_NE(out.find("error"), std::string::npos);
  Exec("load rdrop");
  EXPECT_EQ(Exec("add rdrop 11.11.10.99 7 11.11.10.10 1169 50"), "");
}

TEST_F(CommandTest, AddRejectsMalformedKey) {
  Exec("load rdrop");
  EXPECT_NE(Exec("add rdrop not an ip key").find("error"), std::string::npos);
  EXPECT_NE(Exec("add rdrop 1.2.3.4 7").find("error"), std::string::npos);
}

TEST_F(CommandTest, ReportShowsFiltersAndKeys) {
  Exec("load tcp");
  Exec("load rdrop");
  Exec("add rdrop 11.11.10.99 7 11.11.10.10 1169 50");
  std::string report = Exec("report");
  // Fig. 5.3 layout: filter name flush-left, keys tab-indented.
  EXPECT_NE(report.find("tcp\n"), std::string::npos);
  EXPECT_NE(report.find("rdrop\n\t11.11.10.99 7 -> 11.11.10.10 1169\n"), std::string::npos);
}

TEST_F(CommandTest, ReportFiltersByName) {
  Exec("load tcp");
  Exec("load rdrop");
  std::string report = Exec("report rdrop");
  EXPECT_NE(report.find("rdrop"), std::string::npos);
  EXPECT_EQ(report.find("tcp\n"), std::string::npos);
}

TEST_F(CommandTest, DeleteRemovesService) {
  Exec("load rdrop");
  Exec("add rdrop 11.11.10.99 7 11.11.10.10 1169 50");
  EXPECT_EQ(Exec("delete rdrop 11.11.10.99 7 11.11.10.10 1169"), "");
  std::string report = Exec("report rdrop");
  EXPECT_EQ(report, "rdrop\n");  // Name listed, no keys.
}

TEST_F(CommandTest, UnknownCommandReportsError) {
  EXPECT_NE(Exec("frobnicate").find("error"), std::string::npos);
}

TEST_F(CommandTest, EmptyLineIsSilent) {
  EXPECT_EQ(Exec(""), "");
  EXPECT_EQ(Exec("   "), "");
}

TEST_F(CommandTest, HelpListsCommands) {
  std::string help = Exec("help");
  for (const char* cmd : {"load", "remove", "add", "delete", "report"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

TEST_F(CommandTest, FilterArgsArePassedThrough) {
  Exec("load wsize");
  // Bad mode is rejected by the filter's insertion method.
  EXPECT_NE(Exec("add wsize 1.2.3.4 1 5.6.7.8 2 bogusmode").find("error"), std::string::npos);
  EXPECT_EQ(Exec("add wsize 1.2.3.4 1 5.6.7.8 2 clamp 4096"), "");
}

// Reproduces the structure of the thesis's Fig. 5.3 session: load four
// filters, add a launcher wild-card and services, inspect, mutate, inspect.
TEST_F(CommandTest, Figure53SessionShape) {
  EXPECT_EQ(Exec("load tcp"), "tcp\n");
  EXPECT_EQ(Exec("load launcher"), "launcher\n");
  EXPECT_EQ(Exec("load wsize"), "wsize\n");
  EXPECT_EQ(Exec("load rdrop"), "rdrop\n");
  EXPECT_EQ(Exec("add launcher 11.11.10.10 0 0.0.0.0 0 tcp wsize"), "");
  EXPECT_EQ(Exec("add tcp 11.11.10.99 7 11.11.10.10 1169"), "");
  EXPECT_EQ(Exec("add wsize 11.11.10.99 7 11.11.10.10 1169"), "");

  std::string report = Exec("report");
  EXPECT_NE(report.find("tcp\n\t11.11.10.99 7 -> 11.11.10.10 1169"), std::string::npos);
  EXPECT_NE(report.find("launcher\n\t11.11.10.10 0 -> 0.0.0.0 0"), std::string::npos);
  EXPECT_NE(report.find("wsize\n"), std::string::npos);

  // Replace wsize with rdrop at 50%, as the session does.
  EXPECT_EQ(Exec("add rdrop 11.11.10.99 7 11.11.10.10 1169 50"), "");
  EXPECT_EQ(Exec("delete wsize 11.11.10.99 7 11.11.10.10 1169"), "");
  report = Exec("report");
  EXPECT_NE(report.find("rdrop\n\t11.11.10.99 7 -> 11.11.10.10 1169"), std::string::npos);
  // wsize still loaded but without streams (line 34 of the transcript).
  EXPECT_NE(report.find("wsize\n"), std::string::npos);
  EXPECT_EQ(report.find("wsize\n\t11.11.10.99"), std::string::npos);
}

}  // namespace
}  // namespace comma::proxy

#include "src/proxy/filter_registry.h"

#include <gtest/gtest.h>

#include "src/filters/standard_set.h"

namespace comma::proxy {
namespace {

TEST(RegistryTest, StandardSetKnowsAllFilters) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  auto names = registry.known();
  for (const char* expected : {"tcp", "launcher", "rdrop", "wsize", "snoop", "ttsf", "tdrop",
                               "tcompress", "tdecompress", "hdiscard", "dtrans", "delay",
                               "meter"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

TEST(RegistryTest, CreateRequiresLoad) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  EXPECT_EQ(registry.Create("rdrop"), nullptr);  // Not loaded yet.
  auto name = registry.Load("rdrop");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "rdrop");
  auto filter = registry.Create("rdrop");
  ASSERT_TRUE(filter != nullptr);
  EXPECT_EQ(filter->name(), "rdrop");
}

TEST(RegistryTest, LoadAcceptsLibraryFileNames) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  EXPECT_EQ(registry.Load("librdrop.so").value_or(""), "rdrop");
  EXPECT_EQ(registry.Load("/usr/lib/comma/libwsize.so").value_or(""), "wsize");
  EXPECT_EQ(registry.Load("tcp.so").value_or(""), "tcp");
}

TEST(RegistryTest, LoadUnknownFails) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  EXPECT_FALSE(registry.Load("nonexistent").has_value());
}

TEST(RegistryTest, UnloadMakesUnavailable) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  registry.Load("rdrop");
  EXPECT_TRUE(registry.IsLoaded("rdrop"));
  EXPECT_TRUE(registry.Unload("rdrop"));
  EXPECT_FALSE(registry.IsLoaded("rdrop"));
  EXPECT_EQ(registry.Create("rdrop"), nullptr);
  EXPECT_FALSE(registry.Unload("rdrop"));  // Already unloaded.
}

TEST(RegistryTest, LoadedListPreservesOrder) {
  FilterRegistry registry;
  filters::RegisterStandardFilters(&registry);
  registry.Load("tcp");
  registry.Load("launcher");
  registry.Load("wsize");
  registry.Load("rdrop");
  EXPECT_EQ(registry.loaded(),
            (std::vector<std::string>{"tcp", "launcher", "wsize", "rdrop"}));
  // Re-loading does not duplicate.
  registry.Load("tcp");
  EXPECT_EQ(registry.loaded().size(), 4u);
}

TEST(RegistryTest, DistinctInstancesPerCreate) {
  FilterRegistry registry = filters::StandardRegistry();
  auto a = registry.Create("rdrop");
  auto b = registry.Create("rdrop");
  EXPECT_NE(a.get(), b.get());
}

TEST(RegistryTest, DescriptionsExist) {
  FilterRegistry registry = filters::StandardRegistry();
  EXPECT_FALSE(registry.Description("ttsf").empty());
  EXPECT_TRUE(registry.Description("nonexistent").empty());
}

}  // namespace
}  // namespace comma::proxy

// The layered service abstraction (§10.2.1): named recipes that hide filter
// composition from the user.
#include "src/proxy/service_catalog.h"

#include <gtest/gtest.h>

#include "src/proxy/command.h"

#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

class CatalogTest : public ProxyFixture {
 protected:
  CatalogTest() : catalog_(filters::StandardCatalog()) { sp().set_catalog(&catalog_); }
  ServiceCatalog catalog_;
};

TEST_F(CatalogTest, StandardCatalogHasDocumentedEntries) {
  for (const char* name :
       {"reliable-wireless", "realtime-thin", "compressed", "decompress", "background",
        "disconnect-tolerant", "media-thin", "media-adaptive", "monitored"}) {
    EXPECT_TRUE(catalog_.Find(name) != nullptr) << name;
    EXPECT_FALSE(catalog_.Describe(name).empty()) << name;
  }
  EXPECT_EQ(catalog_.Find("nonexistent"), nullptr);
}

TEST_F(CatalogTest, ApplyOnConcreteKeyInstallsAllSteps) {
  std::string error;
  StreamKey key = DataKey(7, 1169);
  ASSERT_TRUE(catalog_.Apply(sp(), "realtime-thin", key, &error)) << error;
  EXPECT_TRUE(sp().FindFilterOnKey(key, "tcp") != nullptr);
  EXPECT_TRUE(sp().FindFilterOnKey(key, "ttsf") != nullptr);
  EXPECT_TRUE(sp().FindFilterOnKey(key, "tdrop") != nullptr);
  EXPECT_EQ(sp().services().size(), 3u);
}

TEST_F(CatalogTest, RemoveUninstallsAllSteps) {
  std::string error;
  StreamKey key = DataKey(7, 1169);
  ASSERT_TRUE(catalog_.Apply(sp(), "realtime-thin", key, &error)) << error;
  EXPECT_TRUE(catalog_.Remove(sp(), "realtime-thin", key));
  EXPECT_EQ(sp().FindFilterOnKey(key, "tdrop"), nullptr);
  EXPECT_EQ(sp().FindFilterOnKey(key, "ttsf"), nullptr);
  EXPECT_TRUE(sp().services().empty());
}

TEST_F(CatalogTest, ApplyOnWildcardUsesLauncher) {
  std::string error;
  StreamKey wild{net::Ipv4Address(), 0, scenario().mobile_addr(), 80};
  ASSERT_TRUE(catalog_.Apply(sp(), "reliable-wireless", wild, &error)) << error;
  EXPECT_TRUE(sp().FindFilterOnKey(wild, "launcher") != nullptr);
  // A matching stream gets the recipe's filters instantiated.
  auto t = StartTransfer(80, Pattern(200'000));
  sim().RunFor(sim::kSecond);
  StreamKey concrete{scenario().wired_addr(), t->client->local_port(), scenario().mobile_addr(),
                     80};
  EXPECT_TRUE(sp().FindFilterOnKey(concrete, "snoop") != nullptr);
  sim().RunFor(60 * sim::kSecond);
  EXPECT_EQ(t->received.size(), 200'000u);
}

TEST_F(CatalogTest, ApplyUnknownServiceFails) {
  std::string error;
  EXPECT_FALSE(catalog_.Apply(sp(), "warp-drive", DataKey(1, 2), &error));
  EXPECT_NE(error.find("unknown service"), std::string::npos);
}

TEST_F(CatalogTest, FailedStepRollsBack) {
  // Craft a catalog entry whose second step fails (tdrop without ttsf).
  ServiceCatalog broken;
  broken.Register("bad", {"intentionally broken", {{"tcp", {}}, {"tdrop", {"50"}}}});
  std::string error;
  StreamKey key = DataKey(3, 4);
  EXPECT_FALSE(broken.Apply(sp(), "bad", key, &error));
  EXPECT_NE(error.find("ttsf"), std::string::npos);
  // The tcp step was rolled back.
  EXPECT_EQ(sp().FindFilterOnKey(key, "tcp"), nullptr);
  EXPECT_TRUE(sp().services().empty());
}

TEST_F(CatalogTest, ServiceCommandDrivesCatalog) {
  CommandProcessor processor(&sp());
  std::string list = processor.Execute("service list");
  EXPECT_NE(list.find("reliable-wireless"), std::string::npos);
  EXPECT_NE(list.find("snoop"), std::string::npos);

  EXPECT_EQ(processor.Execute("service add monitored 0.0.0.0 0 11.11.10.10 80"), "");
  // Wild-card recipes install a launcher carrying the recipe.
  EXPECT_TRUE(sp().FindFilterOnKey(StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 80},
                                   "launcher") != nullptr);
  EXPECT_EQ(processor.Execute("service delete monitored 0.0.0.0 0 11.11.10.10 80"), "");
  EXPECT_NE(processor.Execute("service add warp-drive 0.0.0.0 0 1.2.3.4 5").find("error"),
            std::string::npos);
  EXPECT_NE(processor.Execute("service").find("usage"), std::string::npos);
}

TEST_F(CatalogTest, ServiceCommandWithoutCatalogErrors) {
  ServiceProxy bare(&scenario().wired_host(), filters::StandardRegistry());
  CommandProcessor processor(&bare);
  EXPECT_NE(processor.Execute("service list").find("no service catalog"), std::string::npos);
}

TEST_F(CatalogTest, EndToEndRecipeThinning) {
  // The whole point: one command thins a stream transparently.
  CommandProcessor processor(&sp());
  EXPECT_EQ(processor.Execute("service add realtime-thin 0.0.0.0 0 11.11.10.10 90"), "");
  auto t = StartTransfer(90, Pattern(60'000));
  sim().RunFor(60 * sim::kSecond);
  EXPECT_TRUE(t->client_closed);
  EXPECT_LT(t->received.size(), 60'000u);
  EXPECT_GT(t->received.size(), 10'000u);
}

}  // namespace
}  // namespace comma::proxy

// Shared fixture: the canonical wireless scenario with a Service Proxy
// attached to the gateway and the standard filter set loaded.
#ifndef COMMA_TESTS_PROXY_PROXY_FIXTURE_H_
#define COMMA_TESTS_PROXY_PROXY_FIXTURE_H_

#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/filters/standard_set.h"
#include "src/proxy/service_proxy.h"

namespace comma::proxy {

class ProxyFixture : public ::testing::Test {
 protected:
  explicit ProxyFixture(core::ScenarioConfig config = CleanConfig()) : scenario_(config) {
    sp_ = std::make_unique<ServiceProxy>(&scenario_.gateway(), filters::StandardRegistry());
  }

  static core::ScenarioConfig CleanConfig() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    return cfg;
  }

  sim::Simulator& sim() { return scenario_.sim(); }
  core::WirelessScenario& scenario() { return scenario_; }
  ServiceProxy& sp() { return *sp_; }

  // The data key for a wired->mobile connection with the given ports.
  StreamKey DataKey(uint16_t src_port, uint16_t dst_port) const {
    return StreamKey{scenario_.wired_addr(), src_port, scenario_.mobile_addr(), dst_port};
  }

  // Adds a service, failing the test on error.
  void MustAdd(const std::string& filter, const StreamKey& key,
               const std::vector<std::string>& args = {}) {
    std::string error;
    ASSERT_TRUE(sp_->AddService(filter, key, args, &error)) << filter << ": " << error;
  }

  // Runs a wired->mobile bulk transfer of `payload` on `port` and returns
  // what the mobile received. Caller runs the simulator.
  struct Transfer {
    util::Bytes received;
    tcp::TcpConnection* client = nullptr;
    tcp::TcpConnection* server = nullptr;
    bool client_closed = false;
    bool server_closed = false;
  };

  std::shared_ptr<Transfer> StartTransfer(uint16_t port, util::Bytes payload,
                                          const tcp::TcpConfig& config = {}) {
    auto t = std::make_shared<Transfer>();
    scenario_.mobile_host().tcp().Listen(
        port,
        [t](tcp::TcpConnection* conn) {
          t->server = conn;
          conn->set_on_data([t](const util::Bytes& data) {
            t->received.insert(t->received.end(), data.begin(), data.end());
          });
          conn->set_on_remote_close([t, conn] { conn->Close(); });
          conn->set_on_closed([t] { t->server_closed = true; });
        },
        config);
    tcp::TcpConnection* client =
        scenario_.wired_host().tcp().Connect(scenario_.mobile_addr(), port, config);
    t->client = client;
    client->set_on_closed([t] { t->client_closed = true; });
    auto remaining = std::make_shared<util::Bytes>(std::move(payload));
    auto pump = [client, remaining] {
      while (!remaining->empty()) {
        size_t n = client->Send(remaining->data(), remaining->size());
        if (n == 0) {
          return;
        }
        remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
      }
      client->Close();
    };
    client->set_on_connected(pump);
    client->set_on_writable(pump);
    return t;
  }

  static util::Bytes Pattern(size_t n) {
    util::Bytes out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(i * 131 + (i >> 7));
    }
    return out;
  }

  // Compressible payload: repeated text.
  static util::Bytes TextPayload(size_t n) {
    static const char kPhrase[] =
        "In a wireless medium, lost packets should be retransmitted as soon as possible. ";
    util::Bytes out;
    while (out.size() < n) {
      out.insert(out.end(), kPhrase, kPhrase + sizeof(kPhrase) - 1);
    }
    out.resize(n);
    return out;
  }

  core::WirelessScenario scenario_;
  std::unique_ptr<ServiceProxy> sp_;
};

}  // namespace comma::proxy

#endif  // COMMA_TESTS_PROXY_PROXY_FIXTURE_H_

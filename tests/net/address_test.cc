#include "src/net/address.h"

#include <gtest/gtest.h>

namespace comma::net {
namespace {

TEST(AddressTest, ConstructFromOctets) {
  Ipv4Address a(10, 0, 0, 1);
  EXPECT_EQ(a.value(), 0x0a000001u);
  EXPECT_EQ(a.ToString(), "10.0.0.1");
}

TEST(AddressTest, ParseValid) {
  auto a = Ipv4Address::Parse("129.97.40.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->ToString(), "129.97.40.42");
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(AddressTest, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.-4").has_value());
}

TEST(AddressTest, Comparisons) {
  Ipv4Address a(10, 0, 0, 1);
  Ipv4Address b(10, 0, 0, 2);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(kAnyAddress.IsUnspecified());
  EXPECT_FALSE(a.IsUnspecified());
}

TEST(PrefixTest, ContainsAndMasks) {
  Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 8);
  EXPECT_EQ(p.base().ToString(), "10.0.0.0");  // Host bits masked off.
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 255, 0, 1)));
  EXPECT_FALSE(p.Contains(Ipv4Address(11, 0, 0, 1)));
}

TEST(PrefixTest, DefaultRouteMatchesEverything) {
  Ipv4Prefix all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
}

TEST(PrefixTest, HostRoute) {
  Ipv4Prefix host(Ipv4Address(10, 0, 0, 5), 32);
  EXPECT_TRUE(host.Contains(Ipv4Address(10, 0, 0, 5)));
  EXPECT_FALSE(host.Contains(Ipv4Address(10, 0, 0, 6)));
}

TEST(PrefixTest, ParseForms) {
  auto p = Ipv4Prefix::Parse("11.11.10.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  EXPECT_TRUE(p->Contains(Ipv4Address(11, 11, 10, 10)));

  // A bare address parses as a /32.
  auto host = Ipv4Prefix::Parse("1.2.3.4");
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->length(), 32);

  EXPECT_FALSE(Ipv4Prefix::Parse("1.2.3.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::Parse("bogus/8").has_value());
}

TEST(PrefixTest, ToStringRoundTrip) {
  auto p = Ipv4Prefix::Parse("192.168.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "192.168.0.0/16");
}

TEST(AddressTest, HashUsableInUnorderedContainers) {
  std::hash<Ipv4Address> h;
  EXPECT_EQ(h(Ipv4Address(1, 2, 3, 4)), h(Ipv4Address(1, 2, 3, 4)));
}

}  // namespace
}  // namespace comma::net

#include "src/net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace comma::net {
namespace {

// RFC 1071 worked example: the checksum of 00 01 f2 03 f4 f5 f6 f7 is
// computed over one's-complement sums; verify against a hand calculation.
TEST(ChecksumTest, Rfc1071Example) {
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> 0xddf2; ~ = 0x220d.
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(ChecksumTest, ZeroBufferChecksumIsAllOnes) {
  std::vector<uint8_t> zeros(20, 0);
  EXPECT_EQ(InternetChecksum(zeros.data(), zeros.size()), 0xffff);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const uint8_t odd[] = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834; ~ = 0x97cb.
  EXPECT_EQ(InternetChecksum(odd, sizeof(odd)), 0x97cb);
}

TEST(ChecksumTest, ChecksummedBufferVerifiesToZero) {
  // Classic property: inserting the checksum makes the total sum 0xffff,
  // i.e. the final complement is zero.
  std::vector<uint8_t> data = {0x45, 0x00, 0x00, 0x54, 0xab, 0xcd, 0x40, 0x00,
                               0x40, 0x01, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                               0x0a, 0x00, 0x00, 0x02};
  uint16_t sum = InternetChecksum(data.data(), data.size());
  data[10] = static_cast<uint8_t>(sum >> 8);
  data[11] = static_cast<uint8_t>(sum);
  EXPECT_EQ(InternetChecksum(data.data(), data.size()), 0);
}

TEST(ChecksumTest, AccumulatorMatchesOneShot) {
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ChecksumAccumulator acc;
  acc.Add(data, 4);
  acc.Add(data + 4, 6);
  EXPECT_EQ(acc.Finish(), InternetChecksum(data, sizeof(data)));
}

TEST(ChecksumTest, AddU16AndU32MatchByteEquivalents) {
  ChecksumAccumulator a;
  a.AddU32(0x0a000001);
  a.AddU16(0x0006);
  const uint8_t bytes[] = {0x0a, 0x00, 0x00, 0x01, 0x00, 0x06};
  ChecksumAccumulator b;
  b.Add(bytes, sizeof(bytes));
  EXPECT_EQ(a.Finish(), b.Finish());
}

TEST(ChecksumTest, EmptyBuffer) {
  EXPECT_EQ(InternetChecksum(nullptr, 0), 0xffff);
}

TEST(ChecksumTest, CarryFoldingHandlesManyWords) {
  // Enough 0xffff words to force multiple carry folds.
  std::vector<uint8_t> data(65534, 0xff);
  uint16_t sum = InternetChecksum(data.data(), data.size());
  // Sum of n 0xffff words is 0xffff after folding; complement is 0.
  EXPECT_EQ(sum, 0);
}

}  // namespace
}  // namespace comma::net

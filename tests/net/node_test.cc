#include "src/net/node.h"

#include <gtest/gtest.h>

#include "src/core/scenario.h"

namespace comma::net {
namespace {

constexpr IpProtocol kTestProto = IpProtocol::kIcmp;

// Three-node chain a -- r -- b built from the canonical scenario.
struct NodeFixture : public ::testing::Test {
  core::WirelessScenario scenario;

  PacketPtr WiredToMobile(size_t len = 100) {
    return Packet::MakeRaw(scenario.wired_addr(), scenario.mobile_addr(), kTestProto,
                           util::Bytes(len, 0x33));
  }
};

TEST_F(NodeFixture, ForwardsAcrossGateway) {
  std::vector<PacketPtr> received;
  scenario.mobile_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { received.push_back(std::move(p)); });
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(scenario.gateway().stats().ip_forw_datagrams, 1u);
}

TEST_F(NodeFixture, TtlDecrementsOnForward) {
  PacketPtr seen;
  scenario.mobile_host().RegisterProtocol(kTestProto,
                                          [&](PacketPtr p) { seen = std::move(p); });
  auto p = WiredToMobile();
  p->ip().ttl = 64;
  p->UpdateChecksums();
  scenario.wired_host().SendPacket(std::move(p));
  scenario.sim().Run();
  ASSERT_TRUE(seen != nullptr);
  EXPECT_EQ(seen->ip().ttl, 63);
  EXPECT_TRUE(seen->VerifyChecksums());  // Forwarding refreshes the IP checksum.
}

TEST_F(NodeFixture, TtlExpiryDropsPacket) {
  std::vector<PacketPtr> received;
  scenario.mobile_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { received.push_back(std::move(p)); });
  auto p = WiredToMobile();
  p->ip().ttl = 1;
  p->UpdateChecksums();
  scenario.wired_host().SendPacket(std::move(p));
  scenario.sim().Run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(scenario.gateway().stats().ip_in_hdr_errors, 1u);
}

TEST_F(NodeFixture, NoRouteCountsAndDrops) {
  auto p = Packet::MakeRaw(scenario.wired_addr(), Ipv4Address(99, 99, 99, 99), kTestProto, {});
  scenario.wired_host().SendPacket(std::move(p));
  scenario.sim().Run();
  // The wired host default-routes it to the gateway, which has no route.
  EXPECT_EQ(scenario.gateway().stats().ip_out_no_routes, 1u);
}

TEST_F(NodeFixture, LongestPrefixMatchWins) {
  // Add a host route on the gateway pointing the mobile's address back at the
  // wired interface; it must win over the /24.
  scenario.gateway().AddHostRoute(scenario.mobile_addr(), 0);
  std::vector<PacketPtr> at_wired;
  scenario.wired_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { at_wired.push_back(std::move(p)); });
  std::vector<PacketPtr> at_mobile;
  scenario.mobile_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { at_mobile.push_back(std::move(p)); });
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_TRUE(at_mobile.empty());

  // Removing the host route restores normal forwarding.
  scenario.gateway().RemoveHostRoute(scenario.mobile_addr());
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(at_mobile.size(), 1u);
}

TEST_F(NodeFixture, LoopbackDeliversLocally) {
  std::vector<PacketPtr> received;
  scenario.wired_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { received.push_back(std::move(p)); });
  scenario.wired_host().SendPacket(Packet::MakeRaw(scenario.wired_addr(), scenario.wired_addr(),
                                                   kTestProto, {}));
  scenario.sim().Run();
  EXPECT_EQ(received.size(), 1u);
}

class RecordingTap : public PacketTap {
 public:
  explicit RecordingTap(TapVerdict verdict) : verdict_(verdict) {}
  TapVerdict OnPacket(PacketPtr& packet, const TapContext&) override {
    ++count_;
    last_uid_ = packet->uid();
    if (verdict_ == TapVerdict::kConsume) {
      consumed_ = std::move(packet);
    }
    return verdict_;
  }
  int count() const { return count_; }
  uint64_t last_uid() const { return last_uid_; }
  Packet* consumed() const { return consumed_.get(); }

 private:
  TapVerdict verdict_;
  int count_ = 0;
  uint64_t last_uid_ = 0;
  PacketPtr consumed_;
};

TEST_F(NodeFixture, TapSeesTransitPackets) {
  RecordingTap tap(TapVerdict::kPass);
  scenario.gateway().AddTap(&tap);
  std::vector<PacketPtr> received;
  scenario.mobile_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { received.push_back(std::move(p)); });
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(tap.count(), 1);
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(NodeFixture, TapDropDiscards) {
  RecordingTap tap(TapVerdict::kDrop);
  scenario.gateway().AddTap(&tap);
  std::vector<PacketPtr> received;
  scenario.mobile_host().RegisterProtocol(
      kTestProto, [&](PacketPtr p) { received.push_back(std::move(p)); });
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(tap.count(), 1);
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(scenario.gateway().stats().ip_in_discards, 1u);
}

TEST_F(NodeFixture, TapConsumeTakesOwnership) {
  RecordingTap tap(TapVerdict::kConsume);
  scenario.gateway().AddTap(&tap);
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_TRUE(tap.consumed() != nullptr);
}

TEST_F(NodeFixture, RemovedTapNoLongerSeesPackets) {
  RecordingTap tap(TapVerdict::kPass);
  scenario.gateway().AddTap(&tap);
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  scenario.gateway().RemoveTap(&tap);
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(tap.count(), 1);
}

TEST_F(NodeFixture, MultipleTapsRunInOrder) {
  RecordingTap first(TapVerdict::kPass);
  RecordingTap second(TapVerdict::kDrop);
  scenario.gateway().AddTap(&first);
  scenario.gateway().AddTap(&second);
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(first.count(), 1);
  EXPECT_EQ(second.count(), 1);
}

TEST_F(NodeFixture, DropByFirstTapSkipsSecond) {
  RecordingTap first(TapVerdict::kDrop);
  RecordingTap second(TapVerdict::kPass);
  scenario.gateway().AddTap(&first);
  scenario.gateway().AddTap(&second);
  scenario.wired_host().SendPacket(WiredToMobile());
  scenario.sim().Run();
  EXPECT_EQ(first.count(), 1);
  EXPECT_EQ(second.count(), 0);
}

TEST_F(NodeFixture, InterfaceStatsCount) {
  scenario.wired_host().SendPacket(WiredToMobile(100));
  scenario.sim().Run();
  EXPECT_EQ(scenario.wired_host().interface_stats(0).out_packets, 1u);
  EXPECT_EQ(scenario.gateway().interface_stats(0).in_packets, 1u);
  EXPECT_EQ(scenario.gateway().interface_stats(1).out_packets, 1u);
  EXPECT_EQ(scenario.mobile_host().interface_stats(0).in_packets, 1u);
}

TEST_F(NodeFixture, IsLocalAddressChecksAllInterfaces) {
  EXPECT_TRUE(scenario.gateway().IsLocalAddress(scenario.gateway_wired_addr()));
  EXPECT_TRUE(scenario.gateway().IsLocalAddress(scenario.gateway_wireless_addr()));
  EXPECT_FALSE(scenario.gateway().IsLocalAddress(scenario.mobile_addr()));
}

}  // namespace
}  // namespace comma::net

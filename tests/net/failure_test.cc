// Failure injection: corruption in flight, and how the transports cope.
#include <gtest/gtest.h>

#include "src/core/scenario.h"
#include "src/tcp/tcp_stack.h"

namespace comma::net {
namespace {

// Corrupts one payload byte of every Nth matching packet without fixing the
// transport checksum — simulating undetected link-level corruption that the
// end host's checksum must catch.
class CorruptionTap : public PacketTap {
 public:
  CorruptionTap(int every_nth, bool tcp_only) : every_nth_(every_nth), tcp_only_(tcp_only) {}

  TapVerdict OnPacket(PacketPtr& p, const TapContext&) override {
    if (tcp_only_ && !p->has_tcp()) {
      return TapVerdict::kPass;
    }
    if (p->payload().empty()) {
      return TapVerdict::kPass;
    }
    if (++count_ % every_nth_ == 0) {
      p->payload()[p->payload().size() / 2] ^= 0xff;
      ++corrupted_;
    }
    return TapVerdict::kPass;
  }
  int corrupted() const { return corrupted_; }

 private:
  int every_nth_;
  bool tcp_only_;
  int count_ = 0;
  int corrupted_ = 0;
};

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
  }
  core::WirelessScenario& s() { return *scenario_; }
  std::unique_ptr<core::WirelessScenario> scenario_;
};

TEST_F(FailureTest, TcpChecksumCatchesCorruptionAndRecovers) {
  CorruptionTap tap(/*every_nth=*/10, /*tcp_only=*/true);
  s().gateway().AddTap(&tap);

  util::Bytes payload(100'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  util::Bytes sink;
  s().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  tcp::TcpConnection* client = s().wired_host().tcp().Connect(s().mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  s().sim().RunFor(300 * sim::kSecond);

  EXPECT_GT(tap.corrupted(), 5);
  // Every corrupted segment was dropped at the receiver...
  EXPECT_GT(s().mobile_host().tcp().checksum_failures(), 0u);
  // ...and retransmission restored the exact byte stream.
  EXPECT_EQ(sink, payload);
  EXPECT_GT(client->stats().bytes_retransmitted, 0u);
}

TEST_F(FailureTest, UdpCorruptionIsDroppedSilently) {
  CorruptionTap tap(/*every_nth=*/2, /*tcp_only=*/false);
  s().gateway().AddTap(&tap);
  auto rx = s().mobile_host().udp().Bind(5000);
  int received = 0;
  rx->set_on_receive([&](const util::Bytes&, const udp::UdpEndpoint&) { ++received; });
  auto tx = s().wired_host().udp().Bind(0);
  for (int i = 0; i < 20; ++i) {
    s().sim().Schedule(i * 10 * sim::kMillisecond, [&] {
      tx->SendTo(s().mobile_addr(), 5000, util::Bytes(100, 0x77));
    });
  }
  s().sim().Run();
  EXPECT_EQ(received, 10);  // Half survived.
  EXPECT_EQ(s().mobile_host().udp().checksum_failures(), 10u);
}

TEST_F(FailureTest, HeaderTamperingWithoutChecksumFixIsRejected) {
  // A misbehaving "filter" that rewrites windows but forgets the checksum
  // contract: the receiving stack must reject its output (why the tcp
  // filter always runs last in the out queue).
  class BadFilterTap : public PacketTap {
   public:
    TapVerdict OnPacket(PacketPtr& p, const TapContext&) override {
      if (p->has_tcp() && (p->tcp().flags & kTcpAck) && !p->payload().empty()) {
        p->tcp().window = 1;  // Mutated, checksum left stale.
        ++tampered_;
      }
      return TapVerdict::kPass;
    }
    int tampered_ = 0;
  } tap;
  s().gateway().AddTap(&tap);

  util::Bytes sink;
  s().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  tcp::TcpConnection* client = s().wired_host().tcp().Connect(s().mobile_addr(), 80);
  client->set_on_connected([client] {
    util::Bytes data(5000, 1);
    client->Send(data);
  });
  s().sim().RunFor(30 * sim::kSecond);
  EXPECT_GT(tap.tampered_, 0);
  // All data segments were tampered: none ever accepted.
  EXPECT_TRUE(sink.empty());
  EXPECT_GT(s().mobile_host().tcp().checksum_failures(), 0u);
}

TEST_F(FailureTest, ExtremeLossEventuallyCompletesTinyTransfer) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.5;  // Half of everything dies.
  cfg.seed = 4242;
  core::WirelessScenario brutal(cfg);
  util::Bytes sink;
  bool closed = false;
  brutal.mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
    conn->set_on_remote_close([conn] { conn->Close(); });
  });
  tcp::TcpConnection* client = brutal.wired_host().tcp().Connect(brutal.mobile_addr(), 80);
  client->set_on_connected([client] {
    util::Bytes data(3000, 0x3c);
    client->Send(data);
    client->Close();
  });
  client->set_on_closed([&] { closed = true; });
  brutal.sim().RunFor(1800 * sim::kSecond);
  EXPECT_EQ(sink.size(), 3000u);
  EXPECT_TRUE(closed);
}

TEST_F(FailureTest, FlappingLinkNeverCorruptsTheStream) {
  // The link toggles every 2 s for a minute; reliability must hold.
  util::Bytes payload(200'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 3);
  }
  util::Bytes sink;
  s().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& d) { sink.insert(sink.end(), d.begin(), d.end()); });
  });
  tcp::TcpConnection* client = s().wired_host().tcp().Connect(s().mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  for (int i = 1; i <= 30; ++i) {
    s().sim().Schedule(i * 2 * sim::kSecond,
                       [this, i] { s().wireless_link().SetUp(i % 2 == 0); });
  }
  s().sim().RunFor(600 * sim::kSecond);
  EXPECT_EQ(sink, payload);
}

}  // namespace
}  // namespace comma::net

#include "src/net/packet.h"

#include <gtest/gtest.h>

namespace comma::net {
namespace {

const Ipv4Address kSrc(10, 0, 0, 99);
const Ipv4Address kDst(11, 11, 10, 10);

PacketPtr MakeDataSegment(size_t payload_len = 100) {
  TcpHeader h;
  h.src_port = 7;
  h.dst_port = 1169;
  h.seq = 1000;
  h.ack = 500;
  h.flags = kTcpAck | kTcpPsh;
  h.window = 8192;
  return Packet::MakeTcp(kSrc, kDst, h, util::Bytes(payload_len, 0x5a));
}

TEST(PacketTest, TcpSizeIncludesAllHeaders) {
  auto p = MakeDataSegment(100);
  EXPECT_EQ(p->SizeBytes(), kIpv4HeaderSize + kTcpHeaderSize + 100);
  EXPECT_EQ(p->Serialize().size(), p->SizeBytes());
}

TEST(PacketTest, UdpSizeIncludesAllHeaders) {
  auto p = Packet::MakeUdp(kSrc, kDst, 53, 1234, util::Bytes(64, 0));
  EXPECT_EQ(p->SizeBytes(), kIpv4HeaderSize + kUdpHeaderSize + 64);
  EXPECT_TRUE(p->has_udp());
  EXPECT_FALSE(p->has_tcp());
}

TEST(PacketTest, FreshPacketsVerify) {
  EXPECT_TRUE(MakeDataSegment()->VerifyChecksums());
  EXPECT_TRUE(Packet::MakeUdp(kSrc, kDst, 1, 2, {1, 2, 3})->VerifyChecksums());
}

TEST(PacketTest, PayloadMutationInvalidatesTcpChecksum) {
  auto p = MakeDataSegment();
  p->payload()[0] ^= 0xff;
  EXPECT_FALSE(p->VerifyChecksums());
  p->UpdateChecksums();
  EXPECT_TRUE(p->VerifyChecksums());
}

TEST(PacketTest, HeaderMutationInvalidatesChecksums) {
  auto p = MakeDataSegment();
  p->tcp().window = 0;  // The wsize filter does exactly this (§8.2.2).
  EXPECT_FALSE(p->VerifyChecksums());
  p->UpdateChecksums();
  EXPECT_TRUE(p->VerifyChecksums());
}

TEST(PacketTest, TtlMutationInvalidatesIpChecksumOnly) {
  auto p = MakeDataSegment();
  --p->ip().ttl;
  EXPECT_FALSE(p->VerifyChecksums());
  p->UpdateChecksums();
  EXPECT_TRUE(p->VerifyChecksums());
}

TEST(PacketTest, SerializeHasCorrectIpFields) {
  auto p = MakeDataSegment(10);
  util::Bytes wire = p->Serialize();
  EXPECT_EQ(wire[0], 0x45);  // Version 4, IHL 5.
  EXPECT_EQ(wire[9], 6);     // Protocol TCP.
  // Total length big-endian at offset 2.
  EXPECT_EQ(static_cast<size_t>(wire[2]) << 8 | wire[3], p->SizeBytes());
  // Source address at offset 12.
  EXPECT_EQ(wire[12], 10);
  EXPECT_EQ(wire[15], 99);
}

TEST(PacketTest, SerializedTcpHeaderLayout) {
  auto p = MakeDataSegment(0);
  util::Bytes wire = p->Serialize();
  const size_t t = kIpv4HeaderSize;
  EXPECT_EQ(static_cast<uint16_t>(wire[t] << 8 | wire[t + 1]), 7);        // src port
  EXPECT_EQ(static_cast<uint16_t>(wire[t + 2] << 8 | wire[t + 3]), 1169);  // dst port
  const uint32_t seq = static_cast<uint32_t>(wire[t + 4]) << 24 |
                       static_cast<uint32_t>(wire[t + 5]) << 16 |
                       static_cast<uint32_t>(wire[t + 6]) << 8 | wire[t + 7];
  EXPECT_EQ(seq, 1000u);
  EXPECT_EQ(wire[t + 13], kTcpAck | kTcpPsh);
}

TEST(PacketTest, CloneIsDeepAndPreservesUid) {
  auto p = MakeDataSegment();
  auto c = p->Clone();
  EXPECT_EQ(c->uid(), p->uid());
  c->payload()[0] = 0;
  EXPECT_NE(c->payload()[0], p->payload()[0]);
  EXPECT_EQ(c->tcp().seq, p->tcp().seq);
}

TEST(PacketTest, DistinctPacketsGetDistinctUids) {
  auto a = MakeDataSegment();
  auto b = MakeDataSegment();
  EXPECT_NE(a->uid(), b->uid());
}

TEST(PacketTest, EncapsulationWrapsAndUnwraps) {
  auto inner = MakeDataSegment(50);
  const uint64_t inner_uid = inner->uid();
  const size_t inner_size = inner->SizeBytes();
  auto outer = Packet::Encapsulate(std::move(inner), Ipv4Address(1, 1, 1, 1),
                                   Ipv4Address(2, 2, 2, 2));
  EXPECT_TRUE(outer->has_inner());
  EXPECT_EQ(outer->ip().protocol, static_cast<uint8_t>(IpProtocol::kIpInIp));
  EXPECT_EQ(outer->SizeBytes(), kIpv4HeaderSize + inner_size);
  EXPECT_TRUE(outer->VerifyChecksums());

  auto unwrapped = outer->Decapsulate();
  ASSERT_TRUE(unwrapped != nullptr);
  EXPECT_EQ(unwrapped->uid(), inner_uid);
  EXPECT_FALSE(outer->has_inner());
  EXPECT_TRUE(unwrapped->VerifyChecksums());
}

TEST(PacketTest, SegmentLengthCountsSynAndFin) {
  auto p = MakeDataSegment(10);
  EXPECT_EQ(TcpSegmentLength(*p), 10u);
  p->tcp().flags |= kTcpSyn;
  EXPECT_EQ(TcpSegmentLength(*p), 11u);
  p->tcp().flags |= kTcpFin;
  EXPECT_EQ(TcpSegmentLength(*p), 12u);
}

TEST(PacketTest, DescribeMentionsEndpoints) {
  auto p = MakeDataSegment();
  std::string d = p->Describe();
  EXPECT_NE(d.find("10.0.0.99:7"), std::string::npos);
  EXPECT_NE(d.find("11.11.10.10:1169"), std::string::npos);
  EXPECT_NE(d.find("ACK"), std::string::npos);
}

TEST(PacketTest, FlagsToString) {
  EXPECT_EQ(TcpFlagsToString(kTcpSyn | kTcpAck), "[SYN,ACK]");
  EXPECT_EQ(TcpFlagsToString(0), "[]");
  EXPECT_EQ(TcpFlagsToString(kTcpRst), "[RST]");
}

TEST(PacketTest, ChecksumsDifferAcrossContent) {
  auto a = MakeDataSegment(100);
  auto b = MakeDataSegment(100);
  b->payload()[50] = 0x00;
  b->UpdateChecksums();
  EXPECT_NE(a->tcp().checksum, b->tcp().checksum);
}

}  // namespace
}  // namespace comma::net

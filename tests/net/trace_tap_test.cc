#include "src/net/trace_tap.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/core/scenario.h"

namespace comma::net {
namespace {

class TraceTapTest : public ::testing::Test {
 protected:
  TraceTapTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
  }
  core::WirelessScenario& s() { return *scenario_; }
  std::unique_ptr<core::WirelessScenario> scenario_;
};

TEST_F(TraceTapTest, CapturesTransitTraffic) {
  TraceTap tap(&s().gateway());
  apps::BulkSink sink(&s().mobile_host(), 80);
  apps::BulkSender sender(&s().wired_host(), s().mobile_addr(), 80, apps::PatternPayload(10'000));
  s().sim().RunFor(30 * sim::kSecond);
  ASSERT_EQ(sink.bytes_received(), 10'000u);
  EXPECT_GT(tap.Count(), 20u);  // Data + acks + handshake + teardown.
  // The capture contains the SYN.
  EXPECT_EQ(tap.CountIf([](const CaptureRecord& r) {
              return (r.tcp_flags & kTcpSyn) != 0 && !(r.tcp_flags & kTcpAck);
            }),
            1u);
  // Data segments carry payload toward the mobile.
  EXPECT_GE(tap.CountIf([this](const CaptureRecord& r) {
              return r.dst == s().mobile_addr() && r.payload_bytes > 0;
            }),
            10u);
}

TEST_F(TraceTapTest, FilterRestrictsCapture) {
  TraceTap tap(&s().gateway(), TcpPort(80));
  apps::BulkSink sink80(&s().mobile_host(), 80);
  apps::BulkSink sink81(&s().mobile_host(), 81);
  apps::BulkSender a(&s().wired_host(), s().mobile_addr(), 80, apps::PatternPayload(3'000));
  apps::BulkSender b(&s().wired_host(), s().mobile_addr(), 81, apps::PatternPayload(3'000));
  s().sim().RunFor(30 * sim::kSecond);
  EXPECT_GT(tap.Count(), 0u);
  EXPECT_EQ(tap.CountIf([](const CaptureRecord& r) {
              return r.src_port != 80 && r.dst_port != 80;
            }),
            0u);
}

TEST_F(TraceTapTest, BetweenHostsFilterMatchesBothDirections) {
  TraceTap tap(&s().gateway(), BetweenHosts(s().wired_addr(), s().mobile_addr()));
  apps::BulkSink sink(&s().mobile_host(), 80);
  apps::BulkSender sender(&s().wired_host(), s().mobile_addr(), 80, apps::PatternPayload(3'000));
  s().sim().RunFor(30 * sim::kSecond);
  const size_t forward = tap.CountIf(
      [this](const CaptureRecord& r) { return r.dst == s().mobile_addr(); });
  const size_t reverse = tap.CountIf(
      [this](const CaptureRecord& r) { return r.src == s().mobile_addr(); });
  EXPECT_GT(forward, 0u);
  EXPECT_GT(reverse, 0u);
}

TEST_F(TraceTapTest, DumpRendersOneLinePerPacket) {
  TraceTap tap(&s().mobile_host());
  auto tx = s().wired_host().udp().Bind(0);
  tx->SendTo(s().mobile_addr(), 9999, util::Bytes{1, 2, 3});
  s().sim().RunFor(sim::kSecond);
  ASSERT_EQ(tap.Count(), 1u);
  std::string dump = tap.Dump();
  EXPECT_NE(dump.find("udp"), std::string::npos);
  EXPECT_NE(dump.find("11.11.10.10"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 1);
}

TEST_F(TraceTapTest, OutboundPacketsAreMarked) {
  TraceTap tap(&s().mobile_host());
  auto tx = s().mobile_host().udp().Bind(0);
  tx->SendTo(s().wired_addr(), 9999, util::Bytes{1});
  s().sim().RunFor(sim::kSecond);
  ASSERT_EQ(tap.Count(), 1u);
  EXPECT_TRUE(tap.records()[0].outbound);
}

TEST_F(TraceTapTest, ClearResetsCapture) {
  TraceTap tap(&s().mobile_host());
  auto tx = s().wired_host().udp().Bind(0);
  tx->SendTo(s().mobile_addr(), 9999, util::Bytes{1});
  s().sim().RunFor(sim::kSecond);
  EXPECT_EQ(tap.Count(), 1u);
  tap.Clear();
  EXPECT_EQ(tap.Count(), 0u);
}

}  // namespace
}  // namespace comma::net

#include "src/net/link.h"

#include <gtest/gtest.h>

#include "src/net/node.h"

namespace comma::net {
namespace {

constexpr IpProtocol kTestProto = IpProtocol::kIcmp;

struct LinkFixture : public ::testing::Test {
  LinkFixture() {
    a = std::make_unique<Node>(&sim, "a");
    b = std::make_unique<Node>(&sim, "b");
    a_if = a->AddInterface(Ipv4Address(10, 0, 0, 1));
    b_if = b->AddInterface(Ipv4Address(10, 0, 0, 2));
  }

  void Wire(const LinkConfig& cfg, uint64_t seed = 1) {
    link = std::make_unique<Link>(&sim, sim::Random(seed), cfg, "test");
    a->AttachLink(a_if, link.get(), 0);
    b->AttachLink(b_if, link.get(), 1);
    a->SetDefaultRoute(a_if);
    b->SetDefaultRoute(b_if);
    b->RegisterProtocol(kTestProto, [this](PacketPtr p) { received.push_back(std::move(p)); });
  }

  PacketPtr MakePacket(size_t len = 100) {
    return Packet::MakeRaw(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), kTestProto,
                           util::Bytes(len, 0x11));
  }

  sim::Simulator sim;
  std::unique_ptr<Node> a, b;
  std::unique_ptr<Link> link;
  uint32_t a_if = 0, b_if = 0;
  std::vector<PacketPtr> received;
};

TEST_F(LinkFixture, DeliversPacket) {
  Wire(WiredLinkConfig());
  a->SendPacket(MakePacket());
  sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(link->stats(0).tx_packets, 1u);
  EXPECT_EQ(link->stats(1).rx_packets, 1u);
}

TEST_F(LinkFixture, DeliveryTimeIsSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;  // 1 Mbit/s.
  cfg.propagation_delay = 10 * sim::kMillisecond;
  Wire(cfg);
  // 125-byte payload + 20 IP header = 145 bytes = 1160 bits => 1160 us.
  a->SendPacket(MakePacket(125));
  sim::TimePoint arrival = -1;
  b->RegisterProtocol(kTestProto, [&](PacketPtr) { arrival = sim.Now(); });
  sim.Run();
  EXPECT_EQ(arrival, 1160 + 10000);
}

TEST_F(LinkFixture, BandwidthSerializesBackToBackPackets) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;  // 1 byte per microsecond.
  cfg.propagation_delay = 0;
  Wire(cfg);
  std::vector<sim::TimePoint> arrivals;
  b->RegisterProtocol(kTestProto, [&](PacketPtr) { arrivals.push_back(sim.Now()); });
  a->SendPacket(MakePacket(80));  // 100 bytes on the wire -> 100 us each.
  a->SendPacket(MakePacket(80));
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 100);
}

TEST_F(LinkFixture, QueueOverflowDropsTail) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 10'000;  // Slow enough to back up.
  cfg.queue_limit_packets = 5;
  Wire(cfg);
  for (int i = 0; i < 20; ++i) {
    a->SendPacket(MakePacket());
  }
  sim.Run();
  EXPECT_GT(link->stats(0).drops_queue, 0u);
  EXPECT_LE(received.size(), 6u);  // Queue limit + the one in transmission.
}

TEST_F(LinkFixture, LossProbabilityDropsSome) {
  LinkConfig cfg = WiredLinkConfig();
  cfg.loss_probability = 0.5;
  Wire(cfg, /*seed=*/7);
  for (int i = 0; i < 200; ++i) {
    // Pace sends so the queue never overflows; only the loss model drops.
    sim.Schedule(i * sim::kMillisecond, [this] { a->SendPacket(MakePacket()); });
  }
  sim.Run();
  EXPECT_GT(link->stats(0).drops_error, 50u);
  EXPECT_GT(received.size(), 50u);
  EXPECT_EQ(received.size() + link->stats(0).drops_error, 200u);
}

TEST_F(LinkFixture, BitErrorRateScalesWithPacketSize) {
  LinkConfig cfg = WiredLinkConfig();
  cfg.bit_error_rate = 1e-4;
  Wire(cfg, /*seed=*/11);
  // Large packets: 1000 bytes = 8000 bits => ~55% loss each.
  for (int i = 0; i < 100; ++i) {
    a->SendPacket(MakePacket(1000));
  }
  sim.Run();
  const uint64_t large_drops = link->stats(0).drops_error;
  EXPECT_GT(large_drops, 20u);
}

TEST_F(LinkFixture, DownLinkDropsEverything) {
  Wire(WiredLinkConfig());
  link->SetUp(false);
  for (int i = 0; i < 5; ++i) {
    a->SendPacket(MakePacket());
  }
  sim.Run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(link->stats(0).drops_down, 5u);
}

TEST_F(LinkFixture, LinkComesBackUp) {
  Wire(WiredLinkConfig());
  link->SetUp(false);
  a->SendPacket(MakePacket());
  sim.Run();
  link->SetUp(true);
  a->SendPacket(MakePacket());
  sim.Run();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(LinkFixture, GoingDownLosesInFlightPackets) {
  LinkConfig cfg;
  cfg.propagation_delay = 100 * sim::kMillisecond;
  Wire(cfg);
  a->SendPacket(MakePacket());
  // Let it start flying, then cut the link mid-propagation.
  sim.RunFor(50 * sim::kMillisecond);
  link->SetUp(false);
  sim.Run();
  EXPECT_TRUE(received.empty());
}

TEST_F(LinkFixture, RuntimeBandwidthChangeAffectsLaterPackets) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8'000'000;
  cfg.propagation_delay = 0;
  Wire(cfg);
  std::vector<sim::TimePoint> arrivals;
  b->RegisterProtocol(kTestProto, [&](PacketPtr) { arrivals.push_back(sim.Now()); });
  a->SendPacket(MakePacket(80));  // 100 us at 8 Mbit/s.
  sim.Run();
  link->SetBandwidth(800'000);  // 10x slower.
  a->SendPacket(MakePacket(80));  // 1000 us now.
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 100);
  EXPECT_EQ(arrivals[1] - arrivals[0], 1000);
}

TEST_F(LinkFixture, StatsCountBytes) {
  Wire(WiredLinkConfig());
  a->SendPacket(MakePacket(100));  // 120 bytes with IP header.
  sim.Run();
  EXPECT_EQ(link->stats(0).tx_bytes, 120u);
  EXPECT_EQ(link->stats(1).rx_bytes, 120u);
}

TEST_F(LinkFixture, BidirectionalTraffic) {
  Wire(WiredLinkConfig());
  std::vector<PacketPtr> at_a;
  a->RegisterProtocol(kTestProto, [&](PacketPtr p) { at_a.push_back(std::move(p)); });
  a->SendPacket(MakePacket());
  b->SendPacket(Packet::MakeRaw(Ipv4Address(10, 0, 0, 2), Ipv4Address(10, 0, 0, 1), kTestProto,
                                util::Bytes(50, 0x22)));
  sim.Run();
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(at_a.size(), 1u);
}

}  // namespace
}  // namespace comma::net

// Stateful proxy failover (docs/robustness.md, "Checkpoint & failover"):
// filter-state export/import round-trips, warm-standby takeover after an
// unplanned gateway crash, and the degradation paths (stale TTSF state ->
// bypass-and-drain; unrestorable services -> pass-through).
#include "src/core/failover_system.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/core/scenario.h"
#include "src/filters/standard_set.h"
#include "src/filters/transform_filters.h"
#include "src/filters/ttsf_filter.h"
#include "src/proxy/checkpoint.h"
#include "src/proxy/service_proxy.h"

namespace comma::core {
namespace {

using proxy::StreamKey;

constexpr uint32_t kIss = 5000;       // Client initial seq.
constexpr uint32_t kServerIss = 900;  // Server initial seq.
constexpr uint32_t kData = kIss + 1;

// A length-preserving transformer: every data payload is XOR-scrambled
// through the TTSF. Builds real (non-identity) sequence-map records while
// keeping input and output spaces aligned — the state shape a checkpoint can
// always restore or resync without stalling the stream.
class ScrambleFilter : public filters::TransformFilterBase {
 public:
  ScrambleFilter() : TransformFilterBase("scramble") {}
  std::string Status() const override { return "scramble"; }

 protected:
  bool Configure(const std::vector<std::string>&, std::string*) override { return true; }
  std::optional<util::Bytes> Transform(const net::Packet& packet) override {
    util::Bytes out = packet.payload();
    for (auto& b : out) {
      b ^= 0x5a;
    }
    return out;
  }
};

void RegisterScramble(proxy::FilterRegistry& registry) {
  registry.Register("scramble", "test: XOR payload through the ttsf",
                    [] { return std::make_unique<ScrambleFilter>(); });
  registry.Load("scramble");
}

// ---------------------------------------------------------------------------
// TTSF state contract: export/import round-trips fed with crafted packets.
// ---------------------------------------------------------------------------

class FaultTtsfStateTest : public ::testing::Test {
 protected:
  FaultTtsfStateTest() {
    ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<WirelessScenario>(cfg);
    sp1_ = std::make_unique<proxy::ServiceProxy>(&scenario_->gateway(),
                                                 filters::StandardRegistry());
    sp2_ = std::make_unique<proxy::ServiceProxy>(&scenario_->mobile_host(),
                                                 filters::StandardRegistry());
    key_ = StreamKey{scenario_->wired_addr(), 7, scenario_->mobile_addr(), 80};
    ttsf1_ = AddTtsf(*sp1_);
    // Establish both directions' mapping state on the source.
    Feed(*sp1_, &scenario_->gateway(), MakeSegment(kIss, {}, net::kTcpSyn));
    Feed(*sp1_, &scenario_->gateway(),
         MakeReverse(kServerIss, kIss + 1, net::kTcpSyn | net::kTcpAck));
  }

  filters::TtsfFilter* AddTtsf(proxy::ServiceProxy& sp) {
    std::string error;
    EXPECT_TRUE(sp.AddService("ttsf", key_, {}, &error)) << error;
    auto* ttsf = dynamic_cast<filters::TtsfFilter*>(sp.FindFilterOnKey(key_, "ttsf"));
    EXPECT_TRUE(ttsf != nullptr);
    return ttsf;
  }

  net::PacketPtr MakeSegment(uint32_t seq, util::Bytes payload, uint8_t flags = net::kTcpAck) {
    net::TcpHeader h;
    h.src_port = 7;
    h.dst_port = 80;
    h.seq = seq;
    h.ack = kServerIss + 1;
    h.flags = flags;
    h.window = 8192;
    return net::Packet::MakeTcp(scenario_->wired_addr(), scenario_->mobile_addr(), h,
                                std::move(payload));
  }

  net::PacketPtr MakeReverse(uint32_t seq, uint32_t ack, uint8_t flags = net::kTcpAck) {
    net::TcpHeader h;
    h.src_port = 80;
    h.dst_port = 7;
    h.seq = seq;
    h.ack = ack;
    h.flags = flags;
    h.window = 16384;
    return net::Packet::MakeTcp(scenario_->mobile_addr(), scenario_->wired_addr(), h, {});
  }

  std::pair<bool, net::PacketPtr> Feed(proxy::ServiceProxy& sp, net::Node* node,
                                       net::PacketPtr p) {
    net::TapContext ctx{node, 0};
    const net::TapVerdict verdict = sp.OnPacket(p, ctx);
    return {verdict == net::TapVerdict::kPass, std::move(p)};
  }

  static util::Bytes Fill(size_t n, uint8_t value) { return util::Bytes(n, value); }

  // Runs a real 100 -> 40 transform through the source TTSF so it holds a
  // non-identity record with a cached replay payload.
  void TransformFirstSegment() {
    auto p = MakeSegment(kData, Fill(100, 1));
    ttsf1_->SubmitTransform(*p, Fill(40, 9));
    net::TapContext ctx{&scenario_->gateway(), 0};
    sp1_->OnPacket(p, ctx);
    ASSERT_EQ(p->payload(), Fill(40, 9));
  }

  std::unique_ptr<WirelessScenario> scenario_;
  std::unique_ptr<proxy::ServiceProxy> sp1_;
  std::unique_ptr<proxy::ServiceProxy> sp2_;
  StreamKey key_;
  filters::TtsfFilter* ttsf1_ = nullptr;
};

TEST_F(FaultTtsfStateTest, ExportImportRoundTripReplaysCachedTransforms) {
  TransformFirstSegment();

  util::Bytes blob;
  ASSERT_EQ(ttsf1_->state_kind(), proxy::FilterStateKind::kCheckpointed);
  ASSERT_TRUE(ttsf1_->ExportState(&blob));

  filters::TtsfFilter* ttsf2 = AddTtsf(*sp2_);
  std::string error;
  ASSERT_TRUE(ttsf2->ImportState(sp2_->context(), blob, &error)) << error;

  // An exact retransmission (data at or below the restored frontier)
  // confirms the map and replays the cached 40-byte image byte-for-byte.
  auto [pass, rtx] = Feed(*sp2_, &scenario_->mobile_host(), MakeSegment(kData, Fill(100, 1)));
  ASSERT_TRUE(pass);
  EXPECT_EQ(rtx->tcp().seq, kData);
  EXPECT_EQ(rtx->payload(), Fill(40, 9));
  EXPECT_FALSE(ttsf2->bypassed(key_));
  EXPECT_EQ(ttsf2->stats().retransmissions_replayed, 1u);

  // With the map confirmed, new data continues the shifted output space.
  auto [pass2, next] = Feed(*sp2_, &scenario_->mobile_host(),
                            MakeSegment(kData + 100, Fill(50, 2)));
  ASSERT_TRUE(pass2);
  EXPECT_EQ(next->tcp().seq, kData + 40);
  EXPECT_FALSE(ttsf2->bypassed(key_));

  // And acks from the mobile remap through the restored records: an ack at
  // the output-space record boundary acknowledges the whole original record.
  auto [pass3, ack] = Feed(*sp2_, &scenario_->mobile_host(),
                           MakeReverse(kServerIss + 1, kData + 40));
  ASSERT_TRUE(pass3);
  EXPECT_EQ(ack->tcp().ack, kData + 100);
}

TEST_F(FaultTtsfStateTest, StaleCheckpointEntersBypassAndDrain) {
  // Source transformed (so transforms_used is set), state exported — and
  // then the stream moved on: the standby's first packet lands BEYOND the
  // restored frontier. Applying the stale map could corrupt the stream, so
  // the TTSF degrades the pair to bypass (frozen shift) instead.
  TransformFirstSegment();
  util::Bytes blob;
  ASSERT_TRUE(ttsf1_->ExportState(&blob));

  filters::TtsfFilter* ttsf2 = AddTtsf(*sp2_);
  std::string error;
  ASSERT_TRUE(ttsf2->ImportState(sp2_->context(), blob, &error)) << error;

  // Data at the restored frontier is normal progress; data STRICTLY beyond
  // it implies segments the crashed gateway transformed after the last
  // checkpoint — the stale case.
  auto [pass, p] = Feed(*sp2_, &scenario_->mobile_host(),
                        MakeSegment(kData + 200, Fill(50, 2)));
  ASSERT_TRUE(pass);
  EXPECT_TRUE(ttsf2->bypassed(key_));
  EXPECT_EQ(ttsf2->stats().bypass_entries, 1u);
  EXPECT_FALSE(ttsf2->bypass_reason().empty());
  // The frozen shift (-60 from the 100->40 record) still applies, so the
  // bypassed stream stays seam-free for whatever the mobile already saw.
  EXPECT_EQ(p->tcp().seq, kData + 140);
}

TEST_F(FaultTtsfStateTest, ImportRejectsForeignAndTruncatedBlobs) {
  filters::TtsfFilter* ttsf2 = AddTtsf(*sp2_);
  std::string error;
  EXPECT_FALSE(ttsf2->ImportState(sp2_->context(), util::Bytes{1, 2, 3}, &error));
  EXPECT_FALSE(error.empty());

  TransformFirstSegment();
  util::Bytes blob;
  ASSERT_TRUE(ttsf1_->ExportState(&blob));
  util::Bytes truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(ttsf2->ImportState(sp2_->context(), truncated, &error));
}

// ---------------------------------------------------------------------------
// RestoreFromCheckpoint degradation paths (no simulation run needed).
// ---------------------------------------------------------------------------

TEST(FaultRestoreTest, StandbyRejectingFilterLoadCountsServicesFailed) {
  ScenarioConfig cfg;
  WirelessScenario scenario(cfg);
  proxy::ServiceProxy sp(&scenario.gateway(), filters::StandardRegistry());

  proxy::CheckpointState ckpt;
  StreamKey key{scenario.wired_addr(), 7, scenario.mobile_addr(), 80};
  ckpt.services.push_back({"nosuchfilter", key, {}, false, {}});
  ckpt.streams.push_back({key, 10, 1000, 0});

  const auto result = mobileip::ProxyHandoffManager::RestoreFromCheckpoint(ckpt, sp);
  EXPECT_EQ(result.services_failed, 1u);
  EXPECT_EQ(result.services_restored, 0u);
  // The stream the dead service touched degrades to pass-through: counted
  // as rebuilt, not restored.
  EXPECT_EQ(result.streams_rebuilt, 1u);
  EXPECT_EQ(result.streams_restored, 0u);
  // The stream itself was still adopted (accounting continues).
  EXPECT_EQ(sp.streams().count(key), 1u);
}

TEST(FaultRestoreTest, CorruptStateBlobCountsStateRebuilt) {
  ScenarioConfig cfg;
  WirelessScenario scenario(cfg);
  proxy::ServiceProxy sp(&scenario.gateway(), filters::StandardRegistry());

  proxy::CheckpointState ckpt;
  StreamKey key{scenario.wired_addr(), 7, scenario.mobile_addr(), 80};
  ckpt.services.push_back({"ttsf", key, {}, true, util::Bytes{0xde, 0xad}});
  ckpt.streams.push_back({key, 10, 1000, 0});
  // A second stream untouched by the damaged service stays "restored".
  StreamKey other{scenario.wired_addr(), 7, scenario.mobile_addr(), 81};
  ckpt.streams.push_back({other, 3, 300, 0});

  const auto result = mobileip::ProxyHandoffManager::RestoreFromCheckpoint(ckpt, sp);
  EXPECT_EQ(result.services_restored, 1u);  // The filter itself came up...
  EXPECT_EQ(result.state_imported, 0u);
  EXPECT_EQ(result.state_rebuilt, 1u);      // ...but rebuilds from the wire.
  EXPECT_EQ(result.streams_rebuilt, 1u);
  EXPECT_EQ(result.streams_restored, 1u);
  // The fresh ttsf is attached and functional despite the rejected blob.
  EXPECT_TRUE(sp.FindFilterOnKey(key, "ttsf") != nullptr);
}

// ---------------------------------------------------------------------------
// Full-system crash takeover.
// ---------------------------------------------------------------------------

TEST(FaultRecoveryTest, GatewayCrashMidTransferRecoversEveryStream) {
  FailoverConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  config.debug_checks = true;
  config.extend_registry = RegisterScramble;
  FailoverSystem system(config);

  // Real transformed state on every stream: tcp + ttsf + scramble.
  std::string error;
  for (uint16_t port : {uint16_t{80}, uint16_t{81}}) {
    StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_home_addr(), port};
    ASSERT_TRUE(system.primary_sp()->AddService("launcher", wildcard,
                                                {"tcp", "ttsf", "scramble"}, &error))
        << error;
  }

  // Crash just after a checkpoint tick (100ms cadence), mid-transfer: the
  // two 300 kB streams share a 1 Mbit/s wireless link, so at 3.05s roughly
  // half the bytes are still in flight.
  const sim::TimePoint crash_at = 3 * sim::kSecond + 50 * sim::kMillisecond;
  system.ScheduleGatewayCrash(crash_at);
  system.ArmFaults();
  // Per-stream services are garbage-collected a couple of seconds after the
  // stream closes, so inspect the standby at the moment of takeover.
  bool ttsf_restored_at_takeover = false;
  system.set_on_takeover([&] {
    for (const auto& svc : system.standby_sp().services()) {
      ttsf_restored_at_takeover =
          ttsf_restored_at_takeover || (svc.filter == "ttsf" && !svc.key.IsWildcard());
    }
  });
  system.Start();

  constexpr size_t kBytes = 300'000;
  apps::BulkSink sink80(&system.scenario().mobile(), 80);
  apps::BulkSink sink81(&system.scenario().mobile(), 81);
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  system.sim().Schedule(sim::kSecond, [&] {
    senders.push_back(std::make_unique<apps::BulkSender>(
        &system.scenario().correspondent(), system.scenario().mobile_home_addr(), 80,
        apps::PatternPayload(kBytes)));
    senders.push_back(std::make_unique<apps::BulkSender>(
        &system.scenario().correspondent(), system.scenario().mobile_home_addr(), 81,
        apps::PatternPayload(kBytes)));
  });

  system.sim().RunFor(120 * sim::kSecond);

  // The crash happened mid-transfer and the standby noticed via watchdog.
  const FailoverRecovery& recovery = system.recovery();
  ASSERT_TRUE(recovery.crashed);
  ASSERT_TRUE(recovery.taken_over);
  EXPECT_EQ(recovery.crash_at, crash_at);
  const sim::Duration detection = recovery.takeover_at - recovery.crash_at;
  EXPECT_GE(detection, 250 * sim::kMillisecond);
  EXPECT_LE(detection, 2 * sim::kSecond);

  // Every stream completed on the standby, well before the horizon (no
  // stream stalls past the RTO backoff ceiling).
  EXPECT_EQ(sink80.bytes_received(), kBytes);
  EXPECT_EQ(sink81.bytes_received(), kBytes);
  EXPECT_LE(sink80.last_byte_at(), crash_at + 60 * sim::kSecond);
  EXPECT_LE(sink81.last_byte_at(), crash_at + 60 * sim::kSecond);

  // The senders' in-flight data crossed the takeover via retransmission.
  EXPECT_GT(system.scenario().correspondent().tcp().Totals().bytes_retransmitted, 0u);

  // Recovery accounting: every pre-crash stream was either restored with
  // its state or explicitly rebuilt — none vanished.
  obs::MetricRegistry& reg = system.standby_sp().metrics();
  const uint64_t restored = reg.GetCounter("sp.recovery.streams_restored")->value();
  const uint64_t rebuilt = reg.GetCounter("sp.recovery.streams_rebuilt")->value();
  EXPECT_EQ(restored + rebuilt, recovery.pre_crash_streams);
  EXPECT_GT(restored, 0u);
  EXPECT_EQ(recovery.restore.services_failed, 0u);
  EXPECT_EQ(reg.GetCounter("sp.recovery.takeovers")->value(), 1u);

  // The TTSF instances made it across with their per-stream services.
  EXPECT_TRUE(ttsf_restored_at_takeover);

  // The EEM came back on the standby (bridge re-registered).
  EXPECT_TRUE(system.eem_server() != nullptr);

  // Auditors stay green on the rebuilt proxy (debug checks are enabled, so
  // a violated invariant aborts the test).
  system.standby_sp().AuditNow();
}

TEST(FaultRecoveryTest, WildcardLauncherRematchesStreamsStartedAfterTakeover) {
  FailoverConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  FailoverSystem system(config);

  std::string error;
  StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_home_addr(), 80};
  ASSERT_TRUE(system.primary_sp()->AddService("launcher", wildcard,
                                              {"tcp", "ttsf", "tdrop:0:7"}, &error))
      << error;

  // Crash before any data stream exists: only the wildcard service (and the
  // control streams) are in the checkpoint.
  system.ScheduleGatewayCrash(3 * sim::kSecond);
  system.ArmFaults();
  system.Start();

  constexpr size_t kBytes = 40'000;
  apps::BulkSink sink(&system.scenario().mobile(), 80);
  std::unique_ptr<apps::BulkSender> sender;
  // The stream starts well after the takeover completed.
  system.sim().Schedule(8 * sim::kSecond, [&] {
    sender = std::make_unique<apps::BulkSender>(&system.scenario().correspondent(),
                                                system.scenario().mobile_home_addr(), 80,
                                                apps::PatternPayload(kBytes));
  });
  // Probe mid-transfer: per-stream services are garbage-collected shortly
  // after the stream closes, so look while it is alive.
  bool launched_ttsf = false;
  system.sim().Schedule(8 * sim::kSecond + 500 * sim::kMillisecond, [&] {
    for (const auto& svc : system.standby_sp().services()) {
      launched_ttsf = launched_ttsf || (svc.filter == "ttsf" && !svc.key.IsWildcard());
    }
  });
  system.sim().RunFor(60 * sim::kSecond);

  ASSERT_TRUE(system.recovery().taken_over);
  EXPECT_EQ(sink.bytes_received(), kBytes);
  // The restored wildcard launcher fired at the standby: the new stream got
  // its per-stream services there.
  EXPECT_TRUE(launched_ttsf);
}

TEST(FaultRecoveryTest, ReplicationIsIncrementalAndWatchdogStaysQuiet) {
  FailoverConfig config;
  config.scenario.wireless.loss_probability = 0.0;
  FailoverSystem system(config);

  std::string error;
  StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_home_addr(), 80};
  ASSERT_TRUE(system.primary_sp()->AddService("launcher", wildcard,
                                              {"tcp", "ttsf", "tdrop:0:7"}, &error))
      << error;
  system.Start();

  constexpr size_t kBytes = 30'000;
  apps::BulkSink sink(&system.scenario().mobile(), 80);
  std::unique_ptr<apps::BulkSender> sender;
  system.sim().Schedule(sim::kSecond, [&] {
    sender = std::make_unique<apps::BulkSender>(&system.scenario().correspondent(),
                                                system.scenario().mobile_home_addr(), 80,
                                                apps::PatternPayload(kBytes));
  });
  system.sim().RunFor(20 * sim::kSecond);

  // No crash: a healthy primary must never trigger a takeover.
  EXPECT_FALSE(system.recovery().taken_over);
  EXPECT_EQ(sink.bytes_received(), kBytes);

  // Checkpoints flowed the whole time; while the transfer ran, changed
  // filter blobs were replicated, and once it went idle the unchanged blobs
  // were elided (incremental replication).
  proxy::CheckpointManager* manager = system.checkpoint_manager();
  ASSERT_TRUE(manager != nullptr);
  EXPECT_GT(manager->stats().frames_sent, 100u);
  EXPECT_GT(manager->stats().blobs_sent, 0u);
  EXPECT_GT(manager->stats().blobs_unchanged, 0u);
  EXPECT_EQ(system.checkpoint_receiver().parse_errors(), 0u);
  EXPECT_GT(system.checkpoint_receiver().frames_received(), 100u);

  // The standby holds a faithful snapshot of the primary, adopted nowhere.
  const proxy::CheckpointState& latest = system.checkpoint_receiver().latest();
  EXPECT_EQ(latest.services.size(), system.primary_sp()->services().size());
  EXPECT_EQ(latest.streams.size(), system.primary_sp()->streams().size());
  EXPECT_TRUE(system.standby_sp().services().empty());
}

}  // namespace
}  // namespace comma::core

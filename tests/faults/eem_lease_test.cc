// EEM reliability layer: acked registrations with bounded retransmit,
// lease-based recovery from a server restart, and value staleness.
#include <gtest/gtest.h>

#include "src/core/comma_system.h"
#include "src/filters/media_filters.h"
#include "src/monitor/eem_client.h"
#include "src/monitor/eem_server.h"

namespace comma::monitor {
namespace {

class FaultEemLeaseTest : public ::testing::Test {
 protected:
  FaultEemLeaseTest() {
    core::CommaSystemConfig cfg;
    cfg.scenario.wireless.loss_probability = 0.0;
    cfg.eem.check_interval = 200 * sim::kMillisecond;
    cfg.eem.update_interval = 500 * sim::kMillisecond;
    cfg.eem.lease = 4 * sim::kSecond;
    system_ = std::make_unique<core::CommaSystem>(cfg);
    client_ = std::make_unique<EemClient>(&system_->scenario().mobile_host());
  }

  VariableId GatewayVar(const std::string& name, uint32_t index = 0) {
    VariableId id;
    id.name = name;
    id.index = index;
    id.server = system_->scenario().gateway_wireless_addr();
    return id;
  }

  sim::Simulator& sim() { return system_->sim(); }

  std::unique_ptr<core::CommaSystem> system_;
  std::unique_ptr<EemClient> client_;
};

// Regression for the fire-and-forget Register: the first datagram dies on a
// downed link; the backoff retransmit (not the caller) recovers it.
TEST_F(FaultEemLeaseTest, FirstRegisterDatagramLostIsRetransmitted) {
  net::Link& wireless = system_->scenario().wireless_link();
  wireless.SetUp(false);
  client_->Register(GatewayVar("sysUpTime"), Attr::Always());
  // Restore the link before the first retransmit (500 ms) fires: exactly
  // one datagram was lost.
  sim().RunFor(100 * sim::kMillisecond);
  wireless.SetUp(true);
  sim().RunFor(2 * sim::kSecond);

  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 1u);
  EXPECT_GE(client_->registers_sent(), 2u);
  EXPECT_GE(client_->acks_received(), 1u);
  auto regs = client_->registrations();
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_TRUE(regs[0].acked);
  EXPECT_EQ(regs[0].id.name, "sysUpTime");
  // Values flow once registered.
  sim().RunFor(2 * sim::kSecond);
  EXPECT_TRUE(client_->GetValue(GatewayVar("sysUpTime")).has_value());
}

TEST_F(FaultEemLeaseTest, UnreachableServerBacksOffThenProbes) {
  system_->scenario().wireless_link().SetUp(false);
  client_->Register(GatewayVar("sysUpTime"), Attr::Always());
  sim().RunFor(60 * sim::kSecond);
  // Bounded: a naive 500 ms retry loop would have sent ~120 datagrams.
  // Burst (6 on exponential backoff, ~15.5 s) then 10 s probes.
  EXPECT_GE(client_->registers_sent(), 8u);
  EXPECT_LE(client_->registers_sent(), 14u);
  auto regs = client_->registrations();
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_FALSE(regs[0].acked);
  EXPECT_GT(regs[0].attempts, 1u);
}

TEST_F(FaultEemLeaseTest, ServerRestartRecoversRegistrationsViaLease) {
  client_->Register(GatewayVar("sysUpTime"), Attr::Always());
  sim().RunFor(2 * sim::kSecond);
  ASSERT_EQ(system_->eem_server()->RegistrationCount(), 1u);
  ASSERT_TRUE(client_->GetValue(GatewayVar("sysUpTime")).has_value());

  // Kill the server: every registration dies with it (state-less restart).
  system_->StopEemServer();
  sim().RunFor(3 * sim::kSecond);
  system_->RestartEemServer();
  ASSERT_NE(system_->eem_server(), nullptr);
  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 0u);

  // The client's lease refresh (lease/2 = 2 s cadence) re-populates the new
  // server without any application involvement.
  sim().RunFor(4 * sim::kSecond);
  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 1u);
  EXPECT_GE(system_->eem_server()->acks_sent(), 1u);
}

TEST_F(FaultEemLeaseTest, ScheduledOutageWindowIsDeclarativeAndRecovers) {
  client_->Register(GatewayVar("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  system_->ScheduleEemOutage(2 * sim::kSecond, 5 * sim::kSecond);
  system_->ArmFaults();
  sim().RunFor(12 * sim::kSecond);
  EXPECT_EQ(system_->fault_plan().AppliedLog(),
            "t=2000000 eem-outage begin\n"
            "t=5000000 eem-outage end\n");
  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 1u);
  EXPECT_TRUE(client_->GetValue(GatewayVar("sysUpTime")).has_value());
}

TEST_F(FaultEemLeaseTest, SilentClientExpiresOffTheServer) {
  // A raw one-off Register with no refreshing client behind it: the lease
  // reaper collects it.
  auto socket = system_->scenario().mobile_host().udp().Bind(0);
  socket->SendTo(system_->scenario().gateway_wireless_addr(), kEemPort,
                 EncodeRegister({1, "sysUpTime", 0, Attr::Always()}));
  sim().RunFor(sim::kSecond);
  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 1u);
  sim().RunFor(6 * sim::kSecond);  // Past the 4 s lease with no refresh.
  EXPECT_EQ(system_->eem_server()->RegistrationCount(), 0u);
  EXPECT_GE(system_->eem_server()->leases_expired(), 1u);
}

TEST_F(FaultEemLeaseTest, ValueAgeExposesServerOutage) {
  client_->Register(GatewayVar("sysUpTime"), Attr::Always(NotifyMode::kPeriodic));
  sim().RunFor(3 * sim::kSecond);
  ASSERT_TRUE(client_->ValueAge(GatewayVar("sysUpTime")).has_value());
  EXPECT_LE(*client_->ValueAge(GatewayVar("sysUpTime")), sim::kSecond);

  system_->StopEemServer();
  sim().RunFor(10 * sim::kSecond);
  // The stored value survives but its age now exposes the outage.
  EXPECT_TRUE(client_->GetValue(GatewayVar("sysUpTime")).has_value());
  EXPECT_GE(*client_->ValueAge(GatewayVar("sysUpTime")), 9 * sim::kSecond);
}

// The hdiscard consumer of ValueAge: congestion data that stops flowing is
// stale, and the filter fails open toward full quality instead of shedding
// layers on a dead monitor's last report.
TEST_F(FaultEemLeaseTest, HdiscardFailsOpenOnStaleEemData) {
  proxy::StreamKey media{net::Ipv4Address(), 0, system_->scenario().mobile_addr(), 5004};
  std::string error;
  ASSERT_TRUE(system_->sp().AddService("hdiscard", media, {"auto", "2"}, &error)) << error;
  proxy::Filter* hdiscard = system_->sp().FindFilterOnKey(media, "hdiscard");
  ASSERT_NE(hdiscard, nullptr);

  // Saturate the wireless queue: 200 kB/s of media into a 1 Mbit/s link.
  // Both objects outlive the whole sim run; the lambda captures raw
  // pointers so the self-reference is not a shared_ptr cycle (LeakSan).
  auto tx = system_->scenario().wired_host().udp().Bind(0);
  std::function<void()> blast;
  bool stop = false;
  std::function<void()>* blast_fn = &blast;
  bool* stop_flag = &stop;
  blast = [this, &tx, blast_fn, stop_flag] {
    if (*stop_flag) {
      return;
    }
    for (int i = 0; i < 20; ++i) {
      util::Bytes payload(1000, 0);
      payload[0] = 2;  // Enhancement layer.
      payload[1] = filters::kMediaTypeMonoImage;
      tx->SendTo(system_->scenario().mobile_addr(), 5004, std::move(payload));
    }
    sim().Schedule(100 * sim::kMillisecond, [blast_fn] { (*blast_fn)(); });
  };
  blast();
  sim().RunFor(8 * sim::kSecond);
  EXPECT_EQ(hdiscard->Status().find("max_layer=2"), std::string::npos)
      << "congestion never shed a layer: " << hdiscard->Status();

  // The monitor dies (and the blast stops): the last queue report is stale
  // within HdiscardFilter::kStaleAfter, and quality climbs back.
  stop = true;
  system_->StopEemServer();
  sim().RunFor(12 * sim::kSecond);
  EXPECT_NE(hdiscard->Status().find("max_layer=2"), std::string::npos)
      << hdiscard->Status();
}

TEST_F(FaultEemLeaseTest, DeregisterStopsRetransmission) {
  system_->scenario().wireless_link().SetUp(false);
  client_->Register(GatewayVar("sysUpTime"), Attr::Always());
  sim().RunFor(sim::kSecond);
  const uint64_t sent = client_->registers_sent();
  client_->Deregister(GatewayVar("sysUpTime"));
  sim().RunFor(30 * sim::kSecond);
  EXPECT_EQ(client_->registers_sent(), sent);  // Timer cancelled with it.
  EXPECT_TRUE(client_->registrations().empty());
}

}  // namespace
}  // namespace comma::monitor

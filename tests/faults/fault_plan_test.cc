// The deterministic fault-injection harness itself: ordering, windows, the
// applied-fault log, and the packet-corruption knob it drives.
#include "src/sim/fault_plan.h"

#include <gtest/gtest.h>

#include "src/core/scenario.h"

namespace comma::sim {
namespace {

TEST(FaultPlanTest, FiresEntriesInTimeOrder) {
  Simulator sim;
  FaultPlan plan;
  std::vector<int> fired;
  plan.At(3 * kSecond, "third", [&] { fired.push_back(3); });
  plan.At(1 * kSecond, "first", [&] { fired.push_back(1); });
  plan.At(2 * kSecond, "second", [&] { fired.push_back(2); });
  EXPECT_EQ(plan.pending(), 3u);
  plan.Arm(&sim);
  sim.RunFor(10 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  ASSERT_EQ(plan.applied().size(), 3u);
  EXPECT_EQ(plan.applied()[0].what, "first");
  EXPECT_EQ(plan.applied()[0].at, 1 * kSecond);
}

TEST(FaultPlanTest, WindowFiresEnterAndExit) {
  Simulator sim;
  FaultPlan plan;
  bool down = false;
  plan.Window(kSecond, 3 * kSecond, "outage", [&] { down = true; }, [&] { down = false; });
  plan.Arm(&sim);
  sim.RunFor(2 * kSecond);
  EXPECT_TRUE(down);
  sim.RunFor(2 * kSecond);
  EXPECT_FALSE(down);
  EXPECT_EQ(plan.AppliedLog(),
            "t=1000000 outage begin\n"
            "t=3000000 outage end\n");
}

TEST(FaultPlanTest, EntriesAddedAfterArmStillFire) {
  Simulator sim;
  FaultPlan plan;
  plan.Arm(&sim);
  int fired = 0;
  plan.At(kSecond, "late", [&] { ++fired; });
  sim.RunFor(2 * kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(FaultPlanTest, AppliedLogIsIdenticalAcrossIdenticalRuns) {
  auto run = [] {
    Simulator sim;
    FaultPlan plan;
    plan.Window(kSecond, 2 * kSecond, "flap", [] {}, [] {});
    plan.At(1500 * kMillisecond, "burst", [] {});
    plan.Arm(&sim);
    sim.RunFor(5 * kSecond);
    return plan.AppliedLog();
  };
  EXPECT_EQ(run(), run());
}

// The corruption knob flips payload bytes but leaves checksums stale, so the
// receiving TCP stack discards the mangled segment and the retransmission
// repairs it: the application stream must stay byte-identical.
TEST(FaultLinkCorruptionTest, CorruptedSegmentsNeverReachTheApplication) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  core::WirelessScenario scenario(cfg);
  scenario.wireless_link().SetCorruptProbability(0.02);

  util::Bytes payload(100'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + (i >> 7));
  }
  util::Bytes received;
  bool server_closed = false;
  scenario.mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& data) {
      received.insert(received.end(), data.begin(), data.end());
    });
    conn->set_on_remote_close([conn] { conn->Close(); });
    conn->set_on_closed([&] { server_closed = true; });
  });
  tcp::TcpConnection* client =
      scenario.wired_host().tcp().Connect(scenario.mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [client, remaining] {
    while (!remaining->empty()) {
      size_t n = client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    client->Close();
  };
  client->set_on_connected(pump);
  client->set_on_writable(pump);
  scenario.sim().RunFor(120 * kSecond);

  EXPECT_TRUE(server_closed);
  EXPECT_EQ(received, payload);  // Bit-for-bit despite in-flight corruption.
  EXPECT_GT(scenario.wireless_link().stats(0).corrupted +
                scenario.wireless_link().stats(1).corrupted,
            0u);
}

}  // namespace
}  // namespace comma::sim

// Service Proxy graceful degradation: a filter whose callback throws is
// quarantined and bypassed fail-open — the stream it was servicing keeps
// flowing, byte-identical, and the port-12000 report shows the quarantine.
#include <gtest/gtest.h>

#include "src/proxy/command.h"
#include "src/util/check.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

// Throws from Out() after `fuse` packets — a service with a latent bug.
class FaultyFilter : public Filter {
 public:
  explicit FaultyFilter(int fuse) : Filter("faulty", FilterPriority::kLow), fuse_(fuse) {}

  FilterVerdict Out(FilterContext&, const StreamKey&, net::Packet& packet) override {
    if (!packet.has_tcp() || packet.payload().empty()) {
      return FilterVerdict::kPass;
    }
    ++seen_;
    if (seen_ > fuse_) {
      throw std::runtime_error("faulty filter blew its fuse");
    }
    return FilterVerdict::kPass;
  }

  int seen() const { return seen_; }

 private:
  int fuse_;
  int seen_ = 0;
};

class FaultQuarantineTest : public ProxyFixture {};

TEST_F(FaultQuarantineTest, ThrowingFilterIsQuarantinedAndStreamSurvives) {
  auto faulty = std::make_shared<FaultyFilter>(5);
  StreamKey wildcard{net::Ipv4Address(), 0, scenario().mobile_addr(), 80};
  sp().Attach(faulty, wildcard);

  util::Bytes payload = Pattern(100'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);

  // The filter faulted on its sixth data packet, was quarantined, and the
  // transfer completed unharmed.
  EXPECT_TRUE(sp().IsQuarantined(faulty.get()));
  EXPECT_EQ(sp().stats().filters_quarantined, 1u);
  EXPECT_EQ(faulty->seen(), 6);  // Never invoked again after the throw.
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->received, payload);
  ASSERT_EQ(sp().quarantine_log().size(), 1u);
  EXPECT_NE(sp().quarantine_log()[0].reason.find("blew its fuse"), std::string::npos);
}

TEST_F(FaultQuarantineTest, QuarantineSurvivesDebugChecks) {
  // The queue auditors must accept quarantined-filter exclusion as coherent
  // cache state (resolved queues skip quarantined instances).
  util::ScopedDebugChecks debug;
  util::ScopedCheckThrow throw_mode;
  auto faulty = std::make_shared<FaultyFilter>(0);
  sp().Attach(faulty, StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 80});

  util::Bytes payload = Pattern(50'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(120 * sim::kSecond);  // Throws CheckFailure on any violation.

  EXPECT_TRUE(sp().IsQuarantined(faulty.get()));
  EXPECT_EQ(t->received, payload);
  sp().AuditNow();
}

TEST_F(FaultQuarantineTest, ThrowingOnNewStreamIsQuarantined) {
  class BadLauncher : public Filter {
   public:
    BadLauncher() : Filter("badlauncher", FilterPriority::kHigh) {}
    void OnNewStream(FilterContext&, const StreamKey&) override {
      throw std::runtime_error("launcher exploded");
    }
  };
  auto bad = std::make_shared<BadLauncher>();
  sp().Attach(bad, StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 80});

  util::Bytes payload = Pattern(10'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(60 * sim::kSecond);

  EXPECT_TRUE(sp().IsQuarantined(bad.get()));
  EXPECT_EQ(t->received, payload);
}

TEST_F(FaultQuarantineTest, ReportCommandShowsQuarantineState) {
  // Quarantine a real (registry-loaded) filter instance so the `report`
  // command — which walks loaded filter names — can show it.
  StreamKey key = DataKey(7, 80);
  MustAdd("rdrop", key, {"50"});
  Filter* rdrop = sp().FindFilterOnKey(key, "rdrop");
  ASSERT_NE(rdrop, nullptr);

  CommandProcessor cmd(&sp());
  const std::string before = cmd.Execute("report rdrop");
  EXPECT_EQ(before.find("quarantined:"), std::string::npos);

  sp().QuarantineFilter(rdrop, "operator isolation test");
  const std::string after = cmd.Execute("report rdrop");
  EXPECT_NE(after.find("quarantined:"), std::string::npos);
  EXPECT_NE(after.find("operator isolation test"), std::string::npos);
  // The normal key line is still present and unchanged in shape.
  EXPECT_NE(after.find("\t" + key.ToString() + "\n"), std::string::npos);
}

TEST_F(FaultQuarantineTest, QuarantinedFilterIsExcludedFromResolvedQueues) {
  auto faulty = std::make_shared<FaultyFilter>(1000);
  StreamKey key = DataKey(7, 80);
  sp().Attach(faulty, key);
  EXPECT_EQ(sp().ResolveQueue(key).size(), 1u);
  sp().QuarantineFilter(faulty.get(), "manual");
  EXPECT_TRUE(sp().ResolveQueue(key).empty());
}

}  // namespace
}  // namespace comma::proxy

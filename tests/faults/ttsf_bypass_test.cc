// TTSF graceful degradation: bypass-and-drain under forced faults, map
// corruption, and link flaps during hold-and-release — the receiver must
// never see bytes the sender did not send.
#include "src/filters/ttsf_filter.h"

#include <gtest/gtest.h>

#include "src/filters/standard_set.h"
#include "src/filters/ttsf_audit.h"
#include "src/util/check.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::filters {
namespace {

using proxy::ProxyFixture;
using proxy::StreamKey;

// A length-preserving transformer: routes every data segment through the
// TTSF transform machinery (records, caching, hold-and-release) without
// changing bytes, so end-to-end equality remains checkable.
class IdentityTransformer : public proxy::Filter {
 public:
  IdentityTransformer() : proxy::Filter("identform", proxy::FilterPriority::kLow) {}

  proxy::FilterVerdict Out(proxy::FilterContext& ctx, const proxy::StreamKey& key,
                           net::Packet& packet) override {
    if (!packet.has_tcp() || packet.payload().empty()) {
      return proxy::FilterVerdict::kPass;
    }
    auto* ttsf = dynamic_cast<TtsfFilter*>(ctx.FindFilterOnKey(key, "ttsf"));
    if (ttsf != nullptr) {
      ttsf->SubmitTransform(packet, packet.payload());
      ++submitted_;
    }
    return proxy::FilterVerdict::kPass;
  }

  uint64_t submitted() const { return submitted_; }

 private:
  uint64_t submitted_ = 0;
};

class FaultTtsfBypassTest : public ProxyFixture {
 protected:
  // Attaches ttsf plus the identity transformer to port-80 streams and
  // returns handles found on the concrete key after the handshake.
  std::shared_ptr<IdentityTransformer> InstallIdentityPath(const StreamKey& key) {
    MustAdd("ttsf", key);
    auto transformer = std::make_shared<IdentityTransformer>();
    sp().Attach(transformer, key);
    return transformer;
  }

  TtsfFilter* FindTtsf(const StreamKey& key) {
    return dynamic_cast<TtsfFilter*>(sp().FindFilterOnKey(key, "ttsf"));
  }
};

TEST_F(FaultTtsfBypassTest, ForcedBypassMidTransferStaysByteIdentical) {
  util::ScopedDebugChecks debug;
  util::ScopedCheckThrow throw_mode;
  util::Bytes payload = Pattern(200'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(100 * sim::kMillisecond);  // Handshake done, port known.
  StreamKey data_key = DataKey(t->client->local_port(), 80);
  auto transformer = InstallIdentityPath(data_key);
  TtsfFilter* ttsf = FindTtsf(data_key);
  ASSERT_NE(ttsf, nullptr);

  // Mid-transfer, fault injection forces the degraded mode.
  sim().Schedule(2 * sim::kSecond, [this, ttsf, data_key] {
    ttsf->ForceBypass(sp().context(), data_key, "injected fault");
  });
  sim().RunFor(240 * sim::kSecond);

  EXPECT_TRUE(ttsf->bypassed(data_key));
  EXPECT_TRUE(ttsf->bypassed(data_key.Reversed()));
  EXPECT_GT(transformer->submitted(), 0u);
  EXPECT_GT(ttsf->stats().bypass_passthrough, 0u);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->received, payload);  // Fail-open, never corrupted.
  EXPECT_NE(ttsf->Status().find("BYPASS"), std::string::npos);
}

TEST_F(FaultTtsfBypassTest, CorruptedMapDegradesToBypassNotCorruptBytes) {
  util::ScopedDebugChecks debug;
  util::ScopedCheckThrow throw_mode;
  util::Bytes payload = Pattern(300'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(100 * sim::kMillisecond);
  StreamKey data_key = DataKey(t->client->local_port(), 80);
  InstallIdentityPath(data_key);
  TtsfFilter* ttsf = FindTtsf(data_key);
  ASSERT_NE(ttsf, nullptr);

  // Corrupt the live offset map mid-transfer (retrying until records are in
  // flight); the next traversal's health probe must catch it.
  // The function object outlives the whole sim run; the lambda captures a
  // raw pointer to it so the self-reference is not a shared_ptr cycle.
  auto corrupt = std::make_shared<std::function<void()>>();
  std::function<void()>* corrupt_fn = corrupt.get();
  *corrupt = [this, ttsf, data_key, corrupt_fn] {
    if (!ttsf->CorruptOffsetMapForTest(data_key)) {
      sim().Schedule(50 * sim::kMillisecond, [corrupt_fn] { (*corrupt_fn)(); });
    }
  };
  sim().Schedule(2 * sim::kSecond, [corrupt_fn] { (*corrupt_fn)(); });
  sim().RunFor(240 * sim::kSecond);

  EXPECT_TRUE(ttsf->bypassed(data_key));
  EXPECT_GE(ttsf->stats().bypass_entries, 1u);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->received, payload);  // Identity transforms: still exact.
}

// Satellite: a wireless link flap in the middle of TTSF hold-and-release
// (wired-side loss creates held out-of-order packets) must end byte-equal
// under full debug checks.
TEST_F(FaultTtsfBypassTest, LinkFlapDuringHoldAndReleaseStaysByteIdentical) {
  util::ScopedDebugChecks debug;
  util::ScopedCheckThrow throw_mode;
  scenario().wired_link().SetLossProbability(0.03);  // Gaps at the gateway.

  util::Bytes payload = Pattern(150'000);
  auto t = StartTransfer(80, payload);
  sim().RunFor(100 * sim::kMillisecond);
  StreamKey data_key = DataKey(t->client->local_port(), 80);
  InstallIdentityPath(data_key);

  // Flap the wireless link mid-transfer: in-flight transformed segments die.
  sim().Schedule(2 * sim::kSecond, [this] { scenario().wireless_link().SetUp(false); });
  sim().Schedule(4 * sim::kSecond, [this] { scenario().wireless_link().SetUp(true); });
  sim().RunFor(600 * sim::kSecond);

  EXPECT_GT(scenario().wireless_link().stats(0).drops_down +
                scenario().wireless_link().stats(1).drops_down,
            0u);
  EXPECT_TRUE(t->client_closed);
  EXPECT_TRUE(t->server_closed);
  EXPECT_EQ(t->received, payload);
}

// White-box drain semantics: held packets leave (shifted) on bypass entry.
class FaultTtsfDrainTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kIss = 5000;

  FaultTtsfDrainTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
    sp_ = std::make_unique<proxy::ServiceProxy>(&scenario_->gateway(), StandardRegistry());
    key_ = StreamKey{scenario_->wired_addr(), 7, scenario_->mobile_addr(), 80};
    std::string error;
    EXPECT_TRUE(sp_->AddService("ttsf", key_, {}, &error)) << error;
    ttsf_ = dynamic_cast<TtsfFilter*>(sp_->FindFilterOnKey(key_, "ttsf"));
    EXPECT_NE(ttsf_, nullptr);
    Feed(MakeSegment(kIss, {}, net::kTcpSyn));
  }

  net::PacketPtr MakeSegment(uint32_t seq, util::Bytes payload, uint8_t flags = net::kTcpAck) {
    net::TcpHeader h;
    h.src_port = 7;
    h.dst_port = 80;
    h.seq = seq;
    h.ack = 1;
    h.flags = flags;
    h.window = 8192;
    return net::Packet::MakeTcp(scenario_->wired_addr(), scenario_->mobile_addr(), h,
                                std::move(payload));
  }

  bool Feed(net::PacketPtr p) {
    net::TapContext ctx{&scenario_->gateway(), 0};
    return sp_->OnPacket(p, ctx) == net::TapVerdict::kPass;
  }

  std::unique_ptr<core::WirelessScenario> scenario_;
  std::unique_ptr<proxy::ServiceProxy> sp_;
  StreamKey key_;
  TtsfFilter* ttsf_ = nullptr;
};

TEST_F(FaultTtsfDrainTest, BypassEntryDrainsHeldPackets) {
  // In-order transformed segment activates the transform path...
  net::PacketPtr first = MakeSegment(kIss + 1, util::Bytes(100, 1));
  ttsf_->SubmitTransform(*first, util::Bytes(100, 1));
  Feed(std::move(first));
  // ...then an out-of-order arrival beyond the frontier is held.
  Feed(MakeSegment(kIss + 201, util::Bytes(50, 2)));
  EXPECT_EQ(ttsf_->stats().bypass_drained, 0u);

  ttsf_->ForceBypass(sp_->context(), key_, "drain test");
  scenario_->sim().RunFor(sim::kMillisecond);  // Deferred re-injection runs.

  EXPECT_TRUE(ttsf_->bypassed(key_));
  EXPECT_EQ(ttsf_->stats().bypass_drained, 1u);
  // Post-bypass traffic passes (constant-shift identity), including the
  // retransmission that fills the old gap.
  EXPECT_TRUE(Feed(MakeSegment(kIss + 101, util::Bytes(100, 3))));
  EXPECT_GT(ttsf_->stats().bypass_passthrough, 0u);
}

}  // namespace
}  // namespace comma::filters

// Deterministic chaos soak (docs/robustness.md, "Chaos soak"): randomized
// fault timelines — link flaps plus an unplanned gateway crash — are derived
// purely from a seed. Two runs of the same seed must be bit-for-bit
// identical in every determinism witness (applied-fault log, recovery-metric
// snapshot, delivered bytes), and every stream must complete despite the
// faults. CI runs the same comparison across 16 seeds (the `chaos` job).
#include "src/core/chaos.h"

#include <gtest/gtest.h>

namespace comma::core {
namespace {

void ExpectIdentical(const ChaosResult& a, const ChaosResult& b, uint64_t seed) {
  EXPECT_EQ(a.fault_log, b.fault_log) << "seed " << seed;
  EXPECT_EQ(a.metrics, b.metrics) << "seed " << seed;
  EXPECT_EQ(a.crash_at, b.crash_at) << "seed " << seed;
  EXPECT_EQ(a.takeover_at, b.takeover_at) << "seed " << seed;
  EXPECT_EQ(a.finished_at, b.finished_at) << "seed " << seed;
  ASSERT_EQ(a.streams.size(), b.streams.size()) << "seed " << seed;
  for (size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(a.streams[i].bytes, b.streams[i].bytes) << "seed " << seed;
    EXPECT_EQ(a.streams[i].last_byte_at, b.streams[i].last_byte_at) << "seed " << seed;
  }
}

TEST(FaultChaosSoakTest, SameSeedRunsAreByteIdentical) {
  for (const uint64_t seed : {1u, 7u, 42u}) {
    ChaosOptions options;
    options.seed = seed;
    const ChaosResult first = RunChaosScenario(options);
    const ChaosResult second = RunChaosScenario(options);
    ExpectIdentical(first, second, seed);

    // The timeline actually exercised the failover machinery...
    EXPECT_GT(first.crash_at, 0u) << "seed " << seed;
    EXPECT_GT(first.takeover_at, first.crash_at) << "seed " << seed;
    EXPECT_FALSE(first.fault_log.empty()) << "seed " << seed;
    // ...and every stream still completed.
    EXPECT_TRUE(first.all_completed) << "seed " << seed << "\n" << first.metrics;
    EXPECT_EQ(first.streams_restored + first.streams_rebuilt, first.pre_crash_streams)
        << "seed " << seed << "\n" << first.metrics;
  }
}

TEST(FaultChaosSoakTest, DifferentSeedsProduceDifferentTimelines) {
  ChaosOptions a;
  a.seed = 3;
  ChaosOptions b;
  b.seed = 4;
  const ChaosResult ra = RunChaosScenario(a);
  const ChaosResult rb = RunChaosScenario(b);
  EXPECT_NE(ra.fault_log, rb.fault_log);
  EXPECT_NE(ra.crash_at, rb.crash_at);
  EXPECT_TRUE(ra.all_completed);
  EXPECT_TRUE(rb.all_completed);
}

TEST(FaultChaosSoakTest, NoCrashVariantNeverTakesOver) {
  ChaosOptions options;
  options.seed = 11;
  options.crash = false;
  options.horizon = 60 * sim::kSecond;
  const ChaosResult result = RunChaosScenario(options);
  EXPECT_TRUE(result.all_completed);
  EXPECT_EQ(result.takeover_at, 0u);
  EXPECT_EQ(result.streams_restored + result.streams_rebuilt, 0u);
  // Flaps still fired (the fault log is not empty without the crash).
  EXPECT_FALSE(result.fault_log.empty());
}

}  // namespace
}  // namespace comma::core

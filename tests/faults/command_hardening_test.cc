// SP command-server hardening: bounded line buffering and clean session
// teardown when the control connection is reset mid-command.
#include "src/proxy/command_server.h"
#include "src/util/bytes.h"

#include <gtest/gtest.h>

#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

class FaultCommandServerTest : public ProxyFixture {
 protected:
  FaultCommandServerTest() {
    server_ = std::make_unique<CommandServer>(&scenario().gateway().tcp(), &sp());
  }

  struct RawClient {
    tcp::TcpConnection* conn = nullptr;
    std::string received;
    bool connected = false;
  };

  std::shared_ptr<RawClient> Connect() {
    auto client = std::make_shared<RawClient>();
    client->conn = scenario().mobile_host().tcp().Connect(
        scenario().gateway_wireless_addr(), kCommandPort);
    client->conn->set_on_connected([client] { client->connected = true; });
    client->conn->set_on_data([client](const util::Bytes& data) {
      client->received.append(comma::util::AsCharPtr(data.data()), data.size());
    });
    sim().RunFor(sim::kSecond);
    EXPECT_TRUE(client->connected);
    return client;
  }

  void SendRaw(const std::shared_ptr<RawClient>& client, const std::string& text) {
    client->conn->Send(comma::util::AsBytePtr(text.data()), text.size());
    sim().RunFor(sim::kSecond);
  }

  std::unique_ptr<CommandServer> server_;
};

TEST_F(FaultCommandServerTest, OversizedLineIsRejectedWithErrorReply) {
  auto client = Connect();
  std::string huge = "load " + std::string(2 * kMaxCommandLineBytes, 'x') + "\n";
  SendRaw(client, huge);
  sim().RunFor(10 * sim::kSecond);  // Let the whole line arrive.
  EXPECT_EQ(client->received, "error: line too long\n.\n");
  EXPECT_EQ(server_->lines_rejected(), 1u);
  // The session is still usable: the next command parses cleanly.
  client->received.clear();
  SendRaw(client, "load rdrop\n");
  EXPECT_EQ(client->received, "rdrop\n.\n");
}

TEST_F(FaultCommandServerTest, OversizedPartialLineDoesNotGrowTheBuffer) {
  auto client = Connect();
  // Never send the newline: a naive server would buffer without bound. Ours
  // rejects as soon as the partial exceeds the cap, then discards the tail.
  SendRaw(client, std::string(kMaxCommandLineBytes + 100, 'a'));
  sim().RunFor(10 * sim::kSecond);
  EXPECT_EQ(client->received, "error: line too long\n.\n");
  SendRaw(client, std::string(5000, 'b'));  // Still the same unterminated line.
  EXPECT_EQ(client->received, "error: line too long\n.\n");  // No second reply.
  EXPECT_EQ(server_->lines_rejected(), 1u);
  // Terminate the monster line; the next command works.
  client->received.clear();
  SendRaw(client, "\nload rdrop\n");
  EXPECT_EQ(client->received, "rdrop\n.\n");
}

TEST_F(FaultCommandServerTest, ConnectionResetMidCommandDropsSession) {
  auto client = Connect();
  EXPECT_EQ(server_->session_count(), 1u);
  SendRaw(client, "load rd");  // Partial command buffered server-side.
  client->conn->Abort();       // RST, no FIN handshake.
  sim().RunFor(5 * sim::kSecond);
  EXPECT_EQ(server_->session_count(), 0u);  // Buffer freed with the session.

  // The server keeps serving new clients.
  auto again = Connect();
  SendRaw(again, "load rdrop\n");
  EXPECT_EQ(again->received, "rdrop\n.\n");
  EXPECT_EQ(server_->session_count(), 1u);
}

}  // namespace
}  // namespace comma::proxy

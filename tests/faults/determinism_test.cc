// The acceptance contract of the fault harness: the same seed plus the same
// fault plan reproduces the same run bit-for-bit — applied-fault log, bytes
// delivered, and packet counts all identical.
#include <gtest/gtest.h>

#include "src/core/comma_system.h"

namespace comma::core {
namespace {

struct RunTrace {
  std::string fault_log;
  util::Bytes received;
  bool completed = false;
  uint64_t wireless_rx_packets = 0;
  uint64_t wireless_drops = 0;
  uint64_t eem_registers_sent = 0;
  uint64_t sp_packets = 0;

  bool operator==(const RunTrace& o) const {
    return fault_log == o.fault_log && received == o.received && completed == o.completed &&
           wireless_rx_packets == o.wireless_rx_packets && wireless_drops == o.wireless_drops &&
           eem_registers_sent == o.eem_registers_sent && sp_packets == o.sp_packets;
  }
};

// One full faulted run: lossy wireless link, TTSF in the path, an EEM client
// registered from the mobile side, a scripted link flap and EEM outage, and
// a bulk transfer riding through all of it.
RunTrace FaultedRun(uint64_t seed) {
  CommaSystemConfig cfg;
  cfg.scenario.seed = seed;
  cfg.scenario.wireless.loss_probability = 0.02;  // Seed-driven randomness.
  cfg.eem.check_interval = 200 * sim::kMillisecond;
  cfg.eem.update_interval = 500 * sim::kMillisecond;
  CommaSystem system(cfg);

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_addr(), 80};
  // 0% transparent drop: TTSF and its transform path are live on every
  // stream but the delivered bytes stay comparable across seeds.
  EXPECT_TRUE(system.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "tdrop:0:5"}, &error))
      << error;

  monitor::EemClient client(&system.scenario().mobile_host());
  monitor::VariableId var;
  var.name = "sysUpTime";
  var.server = system.scenario().gateway_wireless_addr();
  client.Register(var, monitor::Attr::Always());

  system.ScheduleLinkFlap(system.scenario().wireless_link(), 2 * sim::kSecond,
                          3 * sim::kSecond, "wireless");
  system.ScheduleEemOutage(4 * sim::kSecond, 6 * sim::kSecond);
  system.ArmFaults();

  util::Bytes payload(120'000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + (i >> 7));
  }
  RunTrace trace;
  system.scenario().mobile_host().tcp().Listen(80, [&](tcp::TcpConnection* conn) {
    conn->set_on_data([&](const util::Bytes& data) {
      trace.received.insert(trace.received.end(), data.begin(), data.end());
    });
    conn->set_on_remote_close([conn] { conn->Close(); });
    conn->set_on_closed([&] { trace.completed = true; });
  });
  tcp::TcpConnection* tcp_client =
      system.scenario().wired_host().tcp().Connect(system.scenario().mobile_addr(), 80);
  auto remaining = std::make_shared<util::Bytes>(payload);
  auto pump = [tcp_client, remaining] {
    while (!remaining->empty()) {
      size_t n = tcp_client->Send(remaining->data(), remaining->size());
      if (n == 0) {
        return;
      }
      remaining->erase(remaining->begin(), remaining->begin() + static_cast<long>(n));
    }
    tcp_client->Close();
  };
  tcp_client->set_on_connected(pump);
  tcp_client->set_on_writable(pump);

  system.sim().RunFor(300 * sim::kSecond);

  trace.fault_log = system.fault_plan().AppliedLog();
  const net::LinkSideStats s0 = system.scenario().wireless_link().stats(0);
  const net::LinkSideStats s1 = system.scenario().wireless_link().stats(1);
  trace.wireless_rx_packets = s0.rx_packets + s1.rx_packets;
  trace.wireless_drops = s0.drops_error + s1.drops_error + s0.drops_down + s1.drops_down;
  trace.eem_registers_sent = client.registers_sent();
  trace.sp_packets = system.sp().stats().packets_inspected;

  EXPECT_TRUE(trace.completed);
  EXPECT_EQ(trace.received, payload) << "faulted run corrupted the stream";
  return trace;
}

TEST(FaultDeterminismTest, SameSeedAndPlanReproduceTheRunBitForBit) {
  RunTrace first = FaultedRun(7);
  RunTrace second = FaultedRun(7);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.fault_log,
            "t=2000000 link-flap wireless begin\n"
            "t=3000000 link-flap wireless end\n"
            "t=4000000 eem-outage begin\n"
            "t=6000000 eem-outage end\n");
  EXPECT_GT(first.wireless_drops, 0u);  // The faults actually bit.
}

TEST(FaultDeterminismTest, DifferentSeedsStillDeliverTheSameBytes) {
  RunTrace a = FaultedRun(7);
  RunTrace b = FaultedRun(8);
  // The timeline log is scripted (seed-independent); the packet-level
  // trajectory is not — but the application bytes always are.
  EXPECT_EQ(a.fault_log, b.fault_log);
  EXPECT_EQ(a.received, b.received);
}

}  // namespace
}  // namespace comma::core

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/apps/media.h"
#include "src/apps/request_response.h"
#include "src/core/scenario.h"
#include "src/util/compress.h"

namespace comma::apps {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() {
    core::ScenarioConfig cfg;
    cfg.wireless.loss_probability = 0.0;
    scenario_ = std::make_unique<core::WirelessScenario>(cfg);
  }
  core::WirelessScenario& s() { return *scenario_; }
  std::unique_ptr<core::WirelessScenario> scenario_;
};

TEST_F(AppsTest, PayloadGenerators) {
  EXPECT_EQ(PatternPayload(1000).size(), 1000u);
  EXPECT_EQ(TextPayload(1000).size(), 1000u);
  // Pattern is deterministic.
  EXPECT_EQ(PatternPayload(100), PatternPayload(100));
  // Text payload compresses far better than the pattern.
  EXPECT_LT(util::Compress(TextPayload(10000), util::Codec::kLz).size(),
            util::Compress(PatternPayload(10000), util::Codec::kLz).size());
}

TEST_F(AppsTest, BulkTransferCompletes) {
  BulkSink sink(&s().mobile_host(), 80);
  BulkSender sender(&s().wired_host(), s().mobile_addr(), 80, PatternPayload(100'000));
  bool finished_cb = false;
  sender.set_on_finished([&] { finished_cb = true; });
  s().sim().RunFor(60 * sim::kSecond);
  EXPECT_TRUE(sender.finished());
  EXPECT_TRUE(finished_cb);
  EXPECT_TRUE(sink.closed());
  EXPECT_EQ(sink.received(), PatternPayload(100'000));
  EXPECT_GT(sender.GoodputBps(), 0.0);
  EXPECT_LT(sender.GoodputBps(), 1e6);  // Below wireless line rate.
  EXPECT_GT(sink.last_byte_at(), sink.first_byte_at());
}

TEST_F(AppsTest, RequestResponseMeasuresLatency) {
  RequestResponseServer server(&s().mobile_host(), 80, 100, 400);
  RequestResponseClient client(&s().wired_host(), s().mobile_addr(), 80, 100, 400, 20);
  s().sim().RunFor(60 * sim::kSecond);
  EXPECT_TRUE(client.finished());
  EXPECT_EQ(client.completed(), 20);
  EXPECT_EQ(server.requests_served(), 20u);
  // One exchange needs roughly one wired+wireless round trip: >= 12 ms.
  EXPECT_GT(client.latencies_ms().Median(), 10.0);
  EXPECT_LT(client.latencies_ms().Median(), 200.0);
}

TEST_F(AppsTest, MediaStreamDeliversLayeredFrames) {
  MediaSink sink(&s().mobile_host(), 5004);
  MediaSourceConfig cfg;
  cfg.layers = 3;
  LayeredMediaSource source(&s().wired_host(), s().mobile_addr(), cfg);
  source.Start();
  s().sim().RunFor(2 * sim::kSecond);
  source.Stop();
  s().sim().RunFor(sim::kSecond);
  EXPECT_GT(source.frames_sent(), 90u);  // ~50 fps for 2 s.
  EXPECT_EQ(sink.frames_received(), source.frames_sent());
  // Layers cycle evenly.
  EXPECT_NEAR(static_cast<double>(sink.frames_per_layer(0)),
              static_cast<double>(sink.frames_per_layer(1)), 2.0);
  EXPECT_GT(sink.latencies_ms().Median(), 1.0);
  EXPECT_EQ(sink.late_frames(), 0u);  // Clean, unloaded link.
}

TEST_F(AppsTest, MediaLatencyDegradesUnderCongestion) {
  // Saturate the wireless link with a competing bulk transfer: frames queue
  // and real-time deadlines start slipping (§1's motivation for data
  // reduction at the proxy).
  MediaSink sink(&s().mobile_host(), 5004, /*deadline=*/100 * sim::kMillisecond);
  MediaSourceConfig cfg;
  cfg.frame_body = 900;
  LayeredMediaSource source(&s().wired_host(), s().mobile_addr(), cfg);
  BulkSink bulk_sink(&s().mobile_host(), 80);
  BulkSender bulk(&s().wired_host(), s().mobile_addr(), 80, PatternPayload(2'000'000));
  source.Start();
  s().sim().RunFor(5 * sim::kSecond);
  source.Stop();
  // The shared queue hurts the media stream: delayed or lost frames.
  const bool degraded = sink.late_frames() > 0 || sink.frames_received() < source.frames_sent();
  EXPECT_TRUE(degraded);
}

TEST_F(AppsTest, MediaSourceStopsCleanly) {
  MediaSink sink(&s().mobile_host(), 5004);
  MediaSourceConfig cfg;
  LayeredMediaSource source(&s().wired_host(), s().mobile_addr(), cfg);
  source.Start();
  s().sim().RunFor(sim::kSecond);
  source.Stop();
  const uint64_t at_stop = source.frames_sent();
  s().sim().RunFor(sim::kSecond);
  EXPECT_EQ(source.frames_sent(), at_stop);
}

}  // namespace
}  // namespace comma::apps

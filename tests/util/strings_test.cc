#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace comma::util {
namespace {

TEST(StringsTest, SplitWhitespaceBasic) {
  EXPECT_EQ(SplitWhitespace("a b c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitWhitespaceCollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a\t\tb \n c  "), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitWhitespaceEmpty) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   \t\n ").empty());
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"one"}, "-"), "one");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringsTest, FormatBasics) {
  EXPECT_EQ(Format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(Format("%05.1f", 2.25), "002.2");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("report all", "report"));
  EXPECT_FALSE(StartsWith("rep", "report"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, ParseU32Valid) {
  uint32_t v = 0;
  EXPECT_TRUE(ParseU32("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseU32("4294967295", &v));
  EXPECT_EQ(v, 4294967295u);
}

TEST(StringsTest, ParseU32Invalid) {
  uint32_t v = 0;
  EXPECT_FALSE(ParseU32("", &v));
  EXPECT_FALSE(ParseU32("-1", &v));
  EXPECT_FALSE(ParseU32("12a", &v));
  EXPECT_FALSE(ParseU32("4294967296", &v));  // Overflow.
  EXPECT_FALSE(ParseU32(" 5", &v));
}

TEST(StringsTest, ParseU64Overflow) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseU64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseU64("18446744073709551616", &v));
}

TEST(StringsTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

}  // namespace
}  // namespace comma::util

#include "src/util/bytes.h"

#include <gtest/gtest.h>

namespace comma::util {
namespace {

TEST(BytesTest, WriteReadRoundTrip) {
  Bytes buf;
  ByteWriter w(&buf);
  w.WriteU8(0xab);
  w.WriteU16(0x1234);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0102030405060708ULL);
  w.WriteString("hello");

  ByteReader r(buf);
  EXPECT_EQ(r.ReadU8(), 0xab);
  EXPECT_EQ(r.ReadU16(), 0x1234);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, BigEndianLayout) {
  Bytes buf;
  ByteWriter w(&buf);
  w.WriteU16(0x0102);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(BytesTest, ReadPastEndSetsFailed) {
  Bytes buf = {0x01};
  ByteReader r(buf);
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, FailedIsSticky) {
  Bytes buf = {0x01, 0x02};
  ByteReader r(buf);
  r.ReadU32();  // Fails.
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.ReadU8(), 0u);  // Still failed even though a byte "exists".
}

TEST(BytesTest, ReadBytesExact) {
  Bytes buf = {1, 2, 3, 4, 5};
  ByteReader r(buf);
  Bytes head = r.ReadBytes(3);
  EXPECT_EQ(head, (Bytes{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(BytesTest, TruncatedStringFails) {
  Bytes buf;
  ByteWriter w(&buf);
  w.WriteU16(10);  // Claims 10 bytes follow...
  w.WriteU8('x');  // ...but only 1 does.
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.failed());
}

TEST(BytesTest, HexDumpFormatsAndTruncates) {
  EXPECT_EQ(HexDump({0x00, 0xff, 0x10}), "00 ff 10");
  EXPECT_EQ(HexDump({1, 2, 3, 4}, 2), "01 02 ...");
  EXPECT_EQ(HexDump({}), "");
}

TEST(BytesTest, EmptyStringRoundTrip) {
  Bytes buf;
  ByteWriter w(&buf);
  w.WriteString("");
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_FALSE(r.failed());
}

}  // namespace
}  // namespace comma::util

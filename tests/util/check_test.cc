// Coverage for the COMMA_CHECK assertion framework: message formatting,
// throw-mode capture, NDEBUG elision of DCHECKs, and abort behaviour.
#include "src/util/check.h"

#include <gtest/gtest.h>

namespace comma::util {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  COMMA_CHECK(1 + 1 == 2) << "never rendered";
  COMMA_CHECK_EQ(4, 4);
  COMMA_CHECK_NE(4, 5);
  COMMA_CHECK_LT(3, 4);
  COMMA_CHECK_LE(4, 4);
  COMMA_CHECK_GT(5, 4);
  COMMA_CHECK_GE(5, 5);
}

TEST(CheckTest, ThrowModeCarriesConditionAndMessage) {
  ScopedCheckThrow guard;
  try {
    const int streams = 3;
    COMMA_CHECK(streams == 0) << "live streams: " << streams;
    FAIL() << "COMMA_CHECK did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("COMMA_CHECK failed: streams == 0"), std::string::npos) << what;
    EXPECT_NE(what.find("live streams: 3"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  }
}

TEST(CheckTest, CheckOpRendersBothOperands) {
  ScopedCheckThrow guard;
  try {
    const uint32_t frontier = 1000;
    const uint32_t rec_end = 996;
    COMMA_CHECK_EQ(rec_end, frontier) << "offset map desynchronized";
    FAIL() << "COMMA_CHECK_EQ did not throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rec_end == frontier"), std::string::npos) << what;
    EXPECT_NE(what.find("996 vs. 1000"), std::string::npos) << what;
    EXPECT_NE(what.find("offset map desynchronized"), std::string::npos) << what;
  }
}

TEST(CheckTest, CharOperandsPrintNumerically) {
  ScopedCheckThrow guard;
  try {
    const uint8_t a = 7;
    const uint8_t b = 9;
    COMMA_CHECK_EQ(a, b);
    FAIL() << "COMMA_CHECK_EQ did not throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("7 vs. 9"), std::string::npos) << e.what();
  }
}

TEST(CheckTest, EveryComparisonFamilyFires) {
  ScopedCheckThrow guard;
  EXPECT_THROW(COMMA_CHECK_EQ(1, 2), CheckFailure);
  EXPECT_THROW(COMMA_CHECK_NE(2, 2), CheckFailure);
  EXPECT_THROW(COMMA_CHECK_LT(2, 2), CheckFailure);
  EXPECT_THROW(COMMA_CHECK_LE(3, 2), CheckFailure);
  EXPECT_THROW(COMMA_CHECK_GT(2, 2), CheckFailure);
  EXPECT_THROW(COMMA_CHECK_GE(1, 2), CheckFailure);
}

TEST(CheckTest, OperandsEvaluateExactlyOnce) {
  ScopedCheckThrow guard;
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  COMMA_CHECK_GE(bump(), 1);
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(COMMA_CHECK_LT(bump(), 0), CheckFailure);
  EXPECT_EQ(evaluations, 2);
}

TEST(CheckTest, ScopedCheckThrowRestoresPreviousMode) {
  EXPECT_FALSE(CheckThrowEnabled());
  {
    ScopedCheckThrow guard;
    EXPECT_TRUE(CheckThrowEnabled());
    {
      ScopedCheckThrow inner(false);
      EXPECT_FALSE(CheckThrowEnabled());
    }
    EXPECT_TRUE(CheckThrowEnabled());
  }
  EXPECT_FALSE(CheckThrowEnabled());
}

TEST(CheckTest, DebugChecksGateDefaultsOff) {
  EXPECT_FALSE(DebugChecksEnabled());
  {
    ScopedDebugChecks guard;
    EXPECT_TRUE(DebugChecksEnabled());
  }
  EXPECT_FALSE(DebugChecksEnabled());
}

#ifdef NDEBUG
TEST(CheckTest, DcheckElidedInReleaseBuilds) {
  // The condition must not be evaluated at all under NDEBUG.
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  COMMA_DCHECK(bump() == 0) << "elided";
  COMMA_DCHECK_EQ(bump(), -1);
  COMMA_DCHECK_LT(bump(), 0);
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckTest, DcheckActiveInDebugBuilds) {
  ScopedCheckThrow guard;
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  COMMA_DCHECK_EQ(bump(), 1);
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(COMMA_DCHECK(false), CheckFailure);
}
#endif

// One death test per macro family: the default (abort) mode must print the
// message to stderr and terminate.
TEST(CheckDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH(COMMA_CHECK(false) << "boom marker", "COMMA_CHECK failed: false boom marker");
}

TEST(CheckDeathTest, CheckOpAbortsWithOperands) {
  EXPECT_DEATH(COMMA_CHECK_EQ(2 + 2, 5), "2 \\+ 2 == 5 \\(4 vs. 5\\)");
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(COMMA_DCHECK_LE(3, 2), "3 <= 2");
}
#endif

}  // namespace
}  // namespace comma::util

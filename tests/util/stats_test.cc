#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace comma::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double v : {4.0, 2.0, 8.0, 6.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
}

TEST(RunningStatsTest, VarianceMatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(PercentilesTest, ExactValues) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) {
    p.Add(i);
  }
  EXPECT_NEAR(p.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.Median(), 50.5, 1e-9);
  EXPECT_NEAR(p.Percentile(99), 99.01, 0.1);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Percentile(50), 0.0);
}

TEST(PercentilesTest, SingleSample) {
  Percentiles p;
  p.Add(7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(p.Percentile(100), 7.5);
}

TEST(HistogramTest, BucketsFill) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.Add(i + 0.5);
  }
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(h.BucketCount(i), 1u);
  }
  EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(100.0);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
}

TEST(HistogramTest, RenderProducesOneLinePerBucket) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(1.5);
  std::string out = h.Render(10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

}  // namespace
}  // namespace comma::util

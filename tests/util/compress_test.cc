#include "src/util/compress.h"

#include <gtest/gtest.h>

#include "src/sim/random.h"

namespace comma::util {
namespace {

Bytes MakeRepetitive(size_t n) {
  Bytes out;
  const char* phrase = "the quick brown fox jumps over the lazy dog. ";
  while (out.size() < n) {
    out.insert(out.end(), phrase, phrase + strlen(phrase));
  }
  out.resize(n);
  return out;
}

Bytes MakeRandom(size_t n, uint64_t seed) {
  sim::Random rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

class CompressRoundTripTest : public ::testing::TestWithParam<Codec> {};

TEST_P(CompressRoundTripTest, EmptyInput) {
  Bytes c = Compress({}, GetParam());
  auto d = Decompress(c);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->empty());
}

TEST_P(CompressRoundTripTest, RepetitiveText) {
  Bytes input = MakeRepetitive(5000);
  Bytes c = Compress(input, GetParam());
  auto d = Decompress(c);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, input);
}

TEST_P(CompressRoundTripTest, RandomData) {
  Bytes input = MakeRandom(4096, 99);
  Bytes c = Compress(input, GetParam());
  auto d = Decompress(c);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, input);
  // Random data is incompressible: the stored fallback bounds expansion.
  EXPECT_LE(c.size(), input.size() + 8);
}

TEST_P(CompressRoundTripTest, AllSameByte) {
  Bytes input(10000, 0x42);
  Bytes c = Compress(input, GetParam());
  auto d = Decompress(c);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, input);
  if (GetParam() != Codec::kStored) {
    EXPECT_LT(c.size(), input.size() / 10);
  }
}

TEST_P(CompressRoundTripTest, SingleByte) {
  Bytes input = {0x7f};
  auto d = Decompress(Compress(input, GetParam()));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, input);
}

TEST_P(CompressRoundTripTest, VariousSizesRoundTrip) {
  for (size_t n : {1u, 2u, 3u, 15u, 255u, 256u, 1000u, 4095u, 4096u, 4097u, 20000u}) {
    Bytes input = MakeRepetitive(n);
    auto d = Decompress(Compress(input, GetParam()));
    ASSERT_TRUE(d.has_value()) << "size " << n;
    EXPECT_EQ(*d, input) << "size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CompressRoundTripTest,
                         ::testing::Values(Codec::kStored, Codec::kRle, Codec::kLz));

TEST(CompressTest, LzBeatsRleOnText) {
  Bytes input = MakeRepetitive(8000);
  EXPECT_LT(Compress(input, Codec::kLz).size(), Compress(input, Codec::kRle).size());
  EXPECT_LT(Compress(input, Codec::kLz).size(), input.size() / 2);
}

TEST(CompressTest, RleWinsOnRuns) {
  Bytes input(4000, 0xaa);
  EXPECT_LT(Compress(input, Codec::kRle).size(), 100u);
}

TEST(CompressTest, DecompressRejectsGarbage) {
  EXPECT_FALSE(Decompress({}).has_value());
  EXPECT_FALSE(Decompress({0x00, 0x01, 0x02}).has_value());
  EXPECT_FALSE(Decompress(MakeRandom(100, 5)).has_value() &&
               MakeRandom(100, 5)[0] != 0xC3);  // Overwhelmingly rejected.
}

TEST(CompressTest, DecompressRejectsTruncated) {
  Bytes c = Compress(MakeRepetitive(1000), Codec::kLz);
  c.resize(c.size() / 2);
  EXPECT_FALSE(Decompress(c).has_value());
}

TEST(CompressTest, DecompressRejectsBadCodecId) {
  Bytes c = Compress(MakeRepetitive(100), Codec::kLz);
  c[1] = 0x77;
  EXPECT_FALSE(Decompress(c).has_value());
}

TEST(CompressTest, PeekCodecReportsActualCodec) {
  Bytes text = MakeRepetitive(1000);
  EXPECT_EQ(PeekCodec(Compress(text, Codec::kLz)), Codec::kLz);
  // Random data falls back to stored.
  Bytes rnd = MakeRandom(1000, 3);
  EXPECT_EQ(PeekCodec(Compress(rnd, Codec::kLz)), Codec::kStored);
  EXPECT_FALSE(PeekCodec({0x01}).has_value());
}

TEST(CompressTest, OverlappingLzMatchesDecodeCorrectly) {
  // "abcabcabc..." produces matches whose source overlaps the output cursor.
  Bytes input;
  for (int i = 0; i < 3000; ++i) {
    input.push_back(static_cast<uint8_t>('a' + i % 3));
  }
  auto d = Decompress(Compress(input, Codec::kLz));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, input);
}

}  // namespace
}  // namespace comma::util

// The EemMetricsBridge and the closed control loop it enables
// (docs/observability.md): proxy metrics surface as EEM variables, Kati
// registers a threshold watch, and the notification callback drives an SP
// command — transparent service management reacting to transparent
// measurements, with no application involvement.
#include "src/obs/eem_bridge.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/bulk.h"
#include "src/core/comma_system.h"
#include "src/util/strings.h"

namespace comma {
namespace {

TEST(ObsBridgeTest, ExportsCountersGaugesAndHistogramFields) {
  obs::MetricRegistry reg;
  reg.GetCounter("sp.packets")->Inc(7);
  reg.GetGauge("sp.streams")->Set(2.5);
  obs::HistogramMetric* h = reg.GetHistogram("sp.queue_us", 0.0, 100.0, 10);
  h->Observe(4.0);
  obs::EemMetricsBridge bridge(&reg);

  auto counter = bridge.Get("sp.packets", 0);
  ASSERT_TRUE(counter.has_value());
  ASSERT_TRUE(std::holds_alternative<int64_t>(*counter));
  EXPECT_EQ(std::get<int64_t>(*counter), 7);

  auto gauge = bridge.Get("sp.streams", 0);
  ASSERT_TRUE(gauge.has_value());
  ASSERT_TRUE(std::holds_alternative<double>(*gauge));
  EXPECT_EQ(std::get<double>(*gauge), 2.5);

  auto p99 = bridge.Get("sp.queue_us.p99", 0);
  ASSERT_TRUE(p99.has_value());
  ASSERT_TRUE(std::holds_alternative<double>(*p99));
  EXPECT_EQ(std::get<double>(*p99), 4.0);

  EXPECT_FALSE(bridge.Get("no.such.metric", 0).has_value());
}

TEST(ObsBridgeTest, PatternRestrictsExportedNames) {
  obs::MetricRegistry reg;
  reg.GetCounter("sp.packets")->Inc();
  reg.GetCounter("tcp.retransmits")->Inc();
  reg.GetHistogram("sp.queue_us", 0.0, 100.0, 10)->Observe(1.0);
  obs::EemMetricsBridge bridge(&reg, "sp.*");

  EXPECT_TRUE(bridge.Get("sp.packets", 0).has_value());
  EXPECT_FALSE(bridge.Get("tcp.retransmits", 0).has_value());
  // Histogram sub-fields pass the check via their parent's name.
  EXPECT_TRUE(bridge.Get("sp.queue_us.mean", 0).has_value());

  auto names = bridge.Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "sp.packets"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "tcp.retransmits"), names.end());
}

TEST(ObsBridgeTest, SystemEemServerServesProxyMetrics) {
  // CommaSystem installs the bridge automatically: every proxy metric is an
  // EEM variable on the gateway, including pull-model tcp.* sources.
  core::CommaSystem system;
  auto inspected = system.eem_server()->ReadVariable("sp.packets_inspected", 0);
  ASSERT_TRUE(inspected.has_value());
  EXPECT_TRUE(std::holds_alternative<int64_t>(*inspected));
  auto streams = system.eem_server()->ReadVariable("sp.streams", 0);
  ASSERT_TRUE(streams.has_value());
  EXPECT_TRUE(std::holds_alternative<double>(*streams));
  auto tcp_sent = system.eem_server()->ReadVariable("tcp.segments_sent", 0);
  ASSERT_TRUE(tcp_sent.has_value());
  // The EEM's native host variables are still served alongside the bridge.
  EXPECT_TRUE(system.eem_server()->ReadVariable("sysUpTime", 0).has_value());
}

TEST(ObsBridgeTest, BridgeSurvivesEemRestart) {
  core::CommaSystem system;
  system.StopEemServer();
  system.RestartEemServer();
  EXPECT_TRUE(system.eem_server()->ReadVariable("sp.packets_inspected", 0).has_value());
}

// The headline e2e (ISSUE 4 acceptance): tdrop thins a stream, the bridged
// ttsf.bytes_dropped counter crosses Kati's watch threshold, the interrupt
// notification fires Kati's hook, and the hook loads tcompress onto the
// stream through the normal SP command path.
TEST(ObsControlLoopTest, ThresholdWatchNotifiesKatiWhichLoadsFilter) {
  core::CommaSystemConfig cfg;
  cfg.scenario.wireless.loss_probability = 0.0;
  cfg.eem.check_interval = 200 * sim::kMillisecond;
  cfg.eem.update_interval = sim::kSecond;
  core::CommaSystem system(cfg);

  std::string error;
  proxy::StreamKey wildcard{net::Ipv4Address(), 0, system.scenario().mobile_addr(), 80};
  ASSERT_TRUE(system.sp().AddService("launcher", wildcard, {"tcp", "ttsf", "tdrop:50:9"}, &error))
      << error;

  std::string output;
  auto shell = system.MakeKati([&output](const std::string& text) { output += text; });
  shell->Execute("watch ttsf.bytes_dropped gt 5000");
  EXPECT_NE(output.find("watching ttsf.bytes_dropped"), std::string::npos);
  EXPECT_NE(output.find("(interrupt)"), std::string::npos);

  // The reaction: on the first notification, compress the offending stream.
  proxy::StreamKey data_key;
  bool reacted = false;
  shell->set_on_notify([&](const monitor::VariableId& id, const monitor::Value&) {
    if (reacted || id.name != "ttsf.bytes_dropped") {
      return;
    }
    for (const auto& [key, info] : system.sp().streams()) {
      if (key.dst_port == 80 && !key.IsWildcard()) {
        data_key = key;
        reacted = true;
        shell->Execute(util::Format("add tcompress %s %u %s %u lz", key.src.ToString().c_str(),
                                    key.src_port, key.dst.ToString().c_str(), key.dst_port));
        return;
      }
    }
  });

  apps::BulkSink sink(&system.scenario().mobile_host(), 80);
  apps::BulkSender sender(&system.scenario().wired_host(), system.scenario().mobile_addr(), 80,
                          apps::PatternPayload(200000));
  system.sim().RunFor(60 * sim::kSecond);

  // The loop closed: metric crossed, notify printed, hook ran, filter on.
  EXPECT_GT(system.sp().metrics().Read("ttsf.bytes_dropped").value_or(0.0), 5000.0);
  EXPECT_GT(shell->notifies_printed(), 0u);
  EXPECT_NE(output.find("notify: ttsf.bytes_dropped"), std::string::npos);
  ASSERT_TRUE(reacted);
  EXPECT_NE(system.sp().FindFilterOnKey(data_key, "tcompress"), nullptr)
      << "tcompress not attached to " << data_key.ToString();
  // And the new filter's own telemetry appeared in the registry.
  EXPECT_TRUE(system.sp().metrics().Read("sp.filter.tcompress.out_packets").has_value());
}

}  // namespace
}  // namespace comma

// A deliberately tiny JSON parser for round-tripping the `stats -json` /
// RenderJson output in tests. Supports exactly what that format emits:
// objects, string keys, numbers, and nested objects. Not a general parser.
#ifndef COMMA_TESTS_OBS_JSON_UTIL_H_
#define COMMA_TESTS_OBS_JSON_UTIL_H_

#include <cctype>
#include <map>
#include <optional>
#include <string>

namespace comma::obs::testjson {

// Flattens a JSON object into {"counters.sp.packets_inspected": 12, ...}:
// nested object keys join with '.', leaf values must be numbers. Returns
// nullopt on any syntax error, which makes malformed output a test failure.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<std::map<std::string, double>> Parse() {
    std::map<std::string, double> out;
    if (!ParseObject("", &out)) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage.
    }
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
      }
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return false;
    }
    try {
      *out = std::stod(text_.substr(pos_, end - pos_));
    } catch (...) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool ParseObject(const std::string& prefix, std::map<std::string, double>* out) {
    if (!Consume('{')) {
      return false;
    }
    if (Consume('}')) {
      return true;  // Empty object.
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) {
        return false;
      }
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '{') {
        if (!ParseObject(path, out)) {
          return false;
        }
      } else {
        double value = 0.0;
        if (!ParseNumber(&value)) {
          return false;
        }
        (*out)[path] = value;
      }
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline std::optional<std::map<std::string, double>> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace comma::obs::testjson

#endif  // COMMA_TESTS_OBS_JSON_UTIL_H_

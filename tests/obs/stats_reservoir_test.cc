// Edge cases for the util statistics primitives the registry builds on:
// RunningStats on degenerate inputs and the bounded-reservoir Percentiles
// mode (Vitter's algorithm R with a deterministic generator).
#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace comma::util {
namespace {

TEST(ObsStatsEdgeTest, RunningStatsEmpty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(ObsStatsEdgeTest, RunningStatsSingleSample) {
  RunningStats s;
  s.Add(-3.25);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), -3.25);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), -3.25);
  EXPECT_EQ(s.max(), -3.25);
  EXPECT_EQ(s.sum(), -3.25);
}

TEST(ObsStatsEdgeTest, RunningStatsVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  // Sample variance (n-1 denominator) of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(ObsStatsEdgeTest, PercentilesEmpty) {
  Percentiles p;
  EXPECT_EQ(p.count(), 0u);
  EXPECT_EQ(p.stored(), 0u);
  EXPECT_FALSE(p.bounded());
  EXPECT_EQ(p.Percentile(50.0), 0.0);
  EXPECT_EQ(p.Median(), 0.0);
}

TEST(ObsStatsEdgeTest, PercentilesSingleSample) {
  Percentiles p;
  p.Add(42.0);
  EXPECT_EQ(p.count(), 1u);
  EXPECT_EQ(p.Percentile(0.0), 42.0);
  EXPECT_EQ(p.Percentile(50.0), 42.0);
  EXPECT_EQ(p.Percentile(100.0), 42.0);
}

TEST(ObsStatsEdgeTest, ReservoirMatchesExactUnderCapacity) {
  // Below capacity the reservoir holds everything: identical percentiles.
  Percentiles exact;
  Percentiles bounded(64);
  EXPECT_TRUE(bounded.bounded());
  for (int i = 1; i <= 50; ++i) {
    exact.Add(static_cast<double>(i));
    bounded.Add(static_cast<double>(i));
  }
  EXPECT_EQ(bounded.count(), 50u);
  EXPECT_EQ(bounded.stored(), 50u);
  for (double q : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(bounded.Percentile(q), exact.Percentile(q)) << "q=" << q;
  }
}

TEST(ObsStatsEdgeTest, ReservoirStaysBounded) {
  Percentiles p(128);
  for (int i = 0; i < 100000; ++i) {
    p.Add(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(p.count(), 100000u);
  EXPECT_EQ(p.stored(), 128u);
  // The sample is uniform on [0, 1000); the estimated median should land
  // in a generous central band even with only 128 retained samples.
  double median = p.Median();
  EXPECT_GT(median, 250.0);
  EXPECT_LT(median, 750.0);
}

TEST(ObsStatsEdgeTest, ReservoirIsDeterministic) {
  // Same seed, same input order -> identical retained sample set. This is
  // what keeps simulation runs reproducible (ROADMAP: determinism).
  Percentiles a(32);
  Percentiles b(32);
  for (int i = 0; i < 5000; ++i) {
    double x = static_cast<double>((i * 37) % 501);
    a.Add(x);
    b.Add(x);
  }
  ASSERT_EQ(a.stored(), b.stored());
  for (double q = 0.0; q <= 100.0; q += 5.0) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << "q=" << q;
  }
}

TEST(ObsStatsEdgeTest, ReservoirSeedChangesSelection) {
  Percentiles a(16, 1);
  Percentiles b(16, 99991);
  for (int i = 0; i < 10000; ++i) {
    a.Add(static_cast<double>(i));
    b.Add(static_cast<double>(i));
  }
  // Both saw everything, both kept 16; the kept sets should differ for
  // different seeds (overwhelmingly likely with 10000 candidates).
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.stored(), 16u);
  bool any_difference = false;
  for (double q = 0.0; q <= 100.0 && !any_difference; q += 1.0) {
    any_difference = a.Percentile(q) != b.Percentile(q);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ObsStatsEdgeTest, ZeroCapacityIsExactMode) {
  Percentiles p(0);
  EXPECT_FALSE(p.bounded());
  for (int i = 0; i < 500; ++i) {
    p.Add(static_cast<double>(i));
  }
  EXPECT_EQ(p.stored(), 500u);  // Nothing evicted.
}

}  // namespace
}  // namespace comma::util

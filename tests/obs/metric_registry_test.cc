// The metric registry itself: handle stability, push/pull publication,
// glob matching, and the text/JSON renderings (docs/observability.md).
#include "src/obs/metric_registry.h"

#include <gtest/gtest.h>

#include "tests/obs/json_util.h"

namespace comma::obs {
namespace {

TEST(ObsRegistryTest, CounterHandleIsStableAndAccumulates) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("sp.packets");
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(reg.GetCounter("sp.packets"), c);  // Get-or-create, same handle.
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.Read("sp.packets"), 42.0);
}

TEST(ObsRegistryTest, GaugePushAndPull) {
  MetricRegistry reg;
  Gauge* g = reg.GetGauge("sp.streams");
  g->Set(3.5);
  EXPECT_EQ(reg.Read("sp.streams"), 3.5);
  // A source wins over the pushed value.
  double level = 7.0;
  g->set_source([&level] { return level; });
  EXPECT_EQ(reg.Read("sp.streams"), 7.0);
  level = 9.0;
  EXPECT_EQ(reg.Read("sp.streams"), 9.0);
}

TEST(ObsRegistryTest, CounterSourceReadsLive) {
  MetricRegistry reg;
  uint64_t external = 0;
  reg.RegisterCounterSource("tcp.retransmits", [&external] { return external; });
  EXPECT_EQ(reg.Read("tcp.retransmits"), 0.0);
  external = 17;
  EXPECT_EQ(reg.Read("tcp.retransmits"), 17.0);
  EXPECT_EQ(reg.KindOf("tcp.retransmits"), MetricKind::kCounter);
}

TEST(ObsRegistryTest, HistogramSubFieldsReadable) {
  MetricRegistry reg;
  HistogramMetric* h = reg.GetHistogram("sp.queue_us", 0.0, 100.0, 10);
  for (int i = 1; i <= 100; ++i) {
    h->Observe(static_cast<double>(i));
  }
  EXPECT_EQ(reg.Read("sp.queue_us"), 100.0);  // Bare name = count.
  EXPECT_EQ(reg.Read("sp.queue_us.count"), 100.0);
  EXPECT_NEAR(*reg.Read("sp.queue_us.mean"), 50.5, 1e-9);
  EXPECT_EQ(reg.Read("sp.queue_us.min"), 1.0);
  EXPECT_EQ(reg.Read("sp.queue_us.max"), 100.0);
  EXPECT_NEAR(*reg.Read("sp.queue_us.p50"), 50.5, 1.0);
  EXPECT_NEAR(*reg.Read("sp.queue_us.p99"), 99.0, 1.1);
  EXPECT_FALSE(reg.Read("sp.queue_us.p12").has_value());
  EXPECT_FALSE(reg.Read("sp.missing").has_value());
}

TEST(ObsRegistryTest, NullSinksAcceptWrites) {
  // Unbound instrumentation must be safe: the sinks swallow everything.
  MetricRegistry::NullCounter()->Inc(123);
  MetricRegistry::NullGauge()->Set(4.5);
  SUCCEED();
}

TEST(ObsRegistryTest, GlobMatching) {
  // Empty pattern: everything.
  EXPECT_TRUE(MetricRegistry::Matches("", "sp.packets"));
  // Wildcard-free: exact or dotted-prefix.
  EXPECT_TRUE(MetricRegistry::Matches("sp", "sp.packets"));
  EXPECT_TRUE(MetricRegistry::Matches("sp.packets", "sp.packets"));
  EXPECT_FALSE(MetricRegistry::Matches("sp", "spx.packets"));
  EXPECT_FALSE(MetricRegistry::Matches("sp.pack", "sp.packets"));
  // Star and question mark.
  EXPECT_TRUE(MetricRegistry::Matches("sp.*", "sp.packets"));
  EXPECT_TRUE(MetricRegistry::Matches("*.retransmits", "tcp.retransmits"));
  EXPECT_TRUE(MetricRegistry::Matches("sp.filter.*.out_packets", "sp.filter.ttsf.out_packets"));
  EXPECT_FALSE(MetricRegistry::Matches("sp.filter.*.in_packets", "sp.filter.ttsf.out_packets"));
  EXPECT_TRUE(MetricRegistry::Matches("ttsf.bytes_?ropped", "ttsf.bytes_dropped"));
  EXPECT_FALSE(MetricRegistry::Matches("ttsf.bytes_?ropped", "ttsf.bytes_ropped"));
  EXPECT_TRUE(MetricRegistry::Matches("*", "anything.at.all"));
  EXPECT_FALSE(MetricRegistry::Matches("eem.*", "sp.packets"));
}

TEST(ObsRegistryTest, SnapshotIsNameSortedAndFiltered) {
  MetricRegistry reg;
  reg.GetCounter("zeta.count")->Inc();
  reg.GetCounter("alpha.count")->Inc(2);
  reg.GetGauge("mid.level")->Set(5);
  auto all = reg.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "alpha.count");
  EXPECT_EQ(all[1].name, "mid.level");
  EXPECT_EQ(all[2].name, "zeta.count");
  auto some = reg.Snapshot("alpha");
  ASSERT_EQ(some.size(), 1u);
  EXPECT_EQ(some[0].name, "alpha.count");
  EXPECT_EQ(some[0].value, 2.0);
}

TEST(ObsRegistryTest, RenderTextOneLinePerMetric) {
  MetricRegistry reg;
  reg.GetCounter("sp.packets")->Inc(7);
  reg.GetGauge("sp.streams")->Set(2);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("sp.packets 7\n"), std::string::npos);
  EXPECT_NE(text.find("sp.streams 2\n"), std::string::npos);
}

TEST(ObsRegistryTest, JsonRoundTripsThroughParser) {
  MetricRegistry reg;
  reg.GetCounter("sp.packets_inspected")->Inc(1234);
  reg.GetGauge("sp.streams")->Set(2.5);
  uint64_t pulled = 99;
  reg.RegisterCounterSource("tcp.retransmits", [&pulled] { return pulled; });
  HistogramMetric* h = reg.GetHistogram("sp.queue_us", 0.0, 100.0, 10);
  h->Observe(10.0);
  h->Observe(30.0);

  auto parsed = testjson::ParseJson(reg.RenderJson());
  ASSERT_TRUE(parsed.has_value()) << reg.RenderJson();
  const auto& m = *parsed;
  EXPECT_EQ(m.at("counters.sp.packets_inspected"), 1234.0);
  EXPECT_EQ(m.at("counters.tcp.retransmits"), 99.0);
  EXPECT_EQ(m.at("gauges.sp.streams"), 2.5);
  EXPECT_EQ(m.at("histograms.sp.queue_us.count"), 2.0);
  EXPECT_EQ(m.at("histograms.sp.queue_us.mean"), 20.0);
  EXPECT_EQ(m.at("histograms.sp.queue_us.min"), 10.0);
  EXPECT_EQ(m.at("histograms.sp.queue_us.max"), 30.0);
}

TEST(ObsRegistryTest, EmptyRegistryRendersValidJson) {
  MetricRegistry reg;
  auto parsed = testjson::ParseJson(reg.RenderJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(ObsRegistryTest, SizeCountsEveryFamily) {
  MetricRegistry reg;
  reg.GetCounter("a");
  reg.GetGauge("b");
  reg.GetHistogram("c", 0, 1, 2);
  reg.RegisterCounterSource("d", [] { return 0ull; });
  EXPECT_EQ(reg.size(), 4u);
}

}  // namespace
}  // namespace comma::obs

// The `stats` command (§5.3 extension): pattern filtering through the
// CommandProcessor and the -json form round-tripped over port 12000.
#include "src/proxy/command.h"

#include <gtest/gtest.h>

#include "src/proxy/command_server.h"
#include "src/util/bytes.h"
#include "tests/obs/json_util.h"
#include "tests/proxy/proxy_fixture.h"

namespace comma::proxy {
namespace {

class ObsStatsCommandTest : public ProxyFixture {
 protected:
  ObsStatsCommandTest() : processor_(&sp()) {}

  CommandProcessor processor_;
};

TEST_F(ObsStatsCommandTest, BareStatsListsProxyMetrics) {
  std::string out = processor_.Execute("stats");
  EXPECT_NE(out.find("sp.packets_inspected"), std::string::npos);
  EXPECT_NE(out.find("sp.streams"), std::string::npos);
  EXPECT_NE(out.find("sp.registry_size"), std::string::npos);
}

TEST_F(ObsStatsCommandTest, PatternRestrictsOutput) {
  MustAdd("meter", DataKey(7, 1169));
  std::string out = processor_.Execute("stats sp.filter.*");
  EXPECT_NE(out.find("sp.filter.meter.in_packets"), std::string::npos);
  EXPECT_EQ(out.find("sp.packets_inspected"), std::string::npos);
  // A pattern that matches nothing yields no lines at all.
  EXPECT_EQ(processor_.Execute("stats no.such.prefix"), "");
}

TEST_F(ObsStatsCommandTest, ExtraArgumentsAreAnError) {
  std::string out = processor_.Execute("stats sp.* extra");
  EXPECT_EQ(out.rfind("error:", 0), 0u) << out;
}

TEST_F(ObsStatsCommandTest, HelpMentionsStats) {
  EXPECT_NE(processor_.Execute("help").find("stats [-json] [pattern]"), std::string::npos);
}

TEST_F(ObsStatsCommandTest, JsonReflectsTraffic) {
  // Wildcard key: the transfer's ephemeral source port must still match.
  MustAdd("meter", StreamKey{net::Ipv4Address(), 0, scenario().mobile_addr(), 80});
  auto t = StartTransfer(80, Pattern(20000));
  sim().RunFor(30 * sim::kSecond);
  ASSERT_EQ(t->received.size(), 20000u);

  auto parsed = obs::testjson::ParseJson(processor_.Execute("stats -json"));
  ASSERT_TRUE(parsed.has_value());
  const auto& m = *parsed;
  EXPECT_GT(m.at("counters.sp.packets_inspected"), 0.0);
  EXPECT_GT(m.at("counters.sp.filter.meter.in_packets"), 0.0);
  EXPECT_GT(m.at("counters.sp.filter.meter.out_bytes"), 0.0);
  EXPECT_GE(m.at("gauges.sp.streams"), 1.0);
  // The queue-resolve histogram saw at least the first-packet cache miss.
  EXPECT_GT(m.at("histograms.sp.queue_resolve_work.count"), 0.0);
  EXPECT_TRUE(m.count("histograms.sp.queue_resolve_work.p99"));
}

TEST_F(ObsStatsCommandTest, JsonPatternFilterApplies) {
  auto parsed = obs::testjson::ParseJson(processor_.Execute("stats -json sp.streams"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->count("gauges.sp.streams"));
  for (const auto& [key, value] : *parsed) {
    EXPECT_EQ(key, "gauges.sp.streams");
  }
}

// The same command over the wire: the framing layer appends the ".\n"
// marker; what precedes it must parse as JSON.
TEST_F(ObsStatsCommandTest, JsonRoundTripsOverPort12000) {
  CommandServer server(&scenario().gateway().tcp(), &sp());

  auto conn = scenario().mobile_host().tcp().Connect(scenario().gateway_wireless_addr(),
                                                     kCommandPort);
  auto received = std::make_shared<std::string>();
  conn->set_on_data([received](const util::Bytes& data) {
    received->append(comma::util::AsCharPtr(data.data()), data.size());
  });
  sim().RunFor(sim::kSecond);
  const std::string cmd = "stats -json\n";
  conn->Send(comma::util::AsBytePtr(cmd.data()), cmd.size());
  sim().RunFor(5 * sim::kSecond);

  ASSERT_GE(received->size(), 2u);
  ASSERT_EQ(received->substr(received->size() - 2), ".\n");
  auto parsed = obs::testjson::ParseJson(received->substr(0, received->size() - 2));
  ASSERT_TRUE(parsed.has_value()) << *received;
  EXPECT_TRUE(parsed->count("counters.sp.packets_inspected"));
  EXPECT_TRUE(parsed->count("gauges.sp.registry_size"));
}

}  // namespace
}  // namespace comma::proxy

// ObsRegistryThreadedTest — the MetricRegistry is the first object the
// parallel simulator will share across threads (DESIGN.md §7): instrumented
// workers intern handles and bump counters while `stats`, the EEM bridge,
// and bench snapshots read. These tests hammer exactly that mix from four
// threads; the tsan CI preset runs them under -fsanitize=thread, which is
// what actually proves the locking (on a plain build they mostly prove the
// arithmetic).
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metric_registry.h"

namespace comma::obs {
namespace {

constexpr int kThreads = 4;
constexpr int kIters = 2000;

TEST(ObsRegistryThreadedTest, ConcurrentInterningKeepsCountsExact) {
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Interning races on the name→handle maps; the handles that come back
      // must be stable and shared.
      Counter* shared = registry.GetCounter("sp.threaded.shared");
      Counter* own = registry.GetCounter("sp.threaded.worker" + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared->Inc();
        own->Inc();
        if (i % 64 == 0) {
          EXPECT_EQ(registry.GetCounter("sp.threaded.shared"), shared);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(registry.GetCounter("sp.threaded.shared")->value(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("sp.threaded.worker" + std::to_string(t))->value(),
              static_cast<uint64_t>(kIters));
  }
}

TEST(ObsRegistryThreadedTest, WritersRaceSnapshotReaders) {
  MetricRegistry registry;
  // A pull source that re-enters the registry (the sp.registry_size
  // pattern): Snapshot/Read must evaluate it with metrics_mu_ released or
  // this deadlocks.
  registry.RegisterGaugeSource("sp.threaded.registry_size",
                               [&registry] { return static_cast<double>(registry.size()); });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      if (t % 2 == 0) {
        // Writer: intern fresh names, bump counters and gauges, observe.
        HistogramMetric* h = registry.GetHistogram("sp.threaded.lat", 0.0, 100.0, 10);
        for (int i = 0; i < kIters; ++i) {
          registry.GetCounter("sp.threaded.w" + std::to_string(i % 17))->Inc();
          registry.GetGauge("sp.threaded.level")->Set(static_cast<double>(i));
          h->Observe(static_cast<double>(i % 100));
        }
      } else {
        // Reader: snapshot, exact reads, and the JSON rendering, against
        // the writers' interning.
        for (int i = 0; i < kIters / 10; ++i) {
          const std::vector<MetricSample> snap = registry.Snapshot("sp.threaded");
          EXPECT_GE(snap.size(), 1u);
          registry.Read("sp.threaded.registry_size");
          registry.Read("sp.threaded.lat.p99");
          registry.RenderJson("sp.threaded");
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  // Two writer threads observed kIters samples each.
  EXPECT_EQ(registry.GetHistogram("sp.threaded.lat", 0.0, 100.0, 10)->count(),
            static_cast<uint64_t>(2) * kIters);
}

TEST(ObsRegistryThreadedTest, HistogramAggregatesStayConsistent) {
  MetricRegistry registry;
  HistogramMetric* h = registry.GetHistogram("sp.threaded.hist", 0.0, 1000.0, 50);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < kIters; ++i) {
        h->Observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_GE(h->min(), 0.0);
  EXPECT_LE(h->max(), 999.0);
  EXPECT_GE(h->Percentile(99), h->Percentile(50));
}

}  // namespace
}  // namespace comma::obs

// TraceTap's registry binding (docs/observability.md): a tap hands raw
// Counter* handles across the net/obs layer boundary and keeps running
// totals of what it captured, alongside its per-packet records.
#include "src/net/trace_tap.h"

#include <gtest/gtest.h>

#include "src/apps/bulk.h"
#include "src/core/scenario.h"
#include "src/obs/metric_registry.h"

namespace comma::net {
namespace {

TEST(ObsTraceMetricsTest, BoundCountersTrackCapture) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  core::WirelessScenario scenario(cfg);
  obs::MetricRegistry reg;
  TraceTap tap(&scenario.gateway());
  tap.BindMetrics(reg.GetCounter("trace.captured_packets"),
                  reg.GetCounter("trace.captured_bytes"));

  apps::BulkSink sink(&scenario.mobile_host(), 80);
  apps::BulkSender sender(&scenario.wired_host(), scenario.mobile_addr(), 80,
                          apps::PatternPayload(10000));
  scenario.sim().RunFor(30 * sim::kSecond);
  ASSERT_EQ(sink.bytes_received(), 10000u);

  EXPECT_GT(tap.Count(), 0u);
  EXPECT_EQ(reg.Read("trace.captured_packets"), static_cast<double>(tap.Count()));
  // The byte counter tracks payload bytes; with a loss-free link the data
  // flows through the gateway exactly once (acks carry no payload).
  EXPECT_EQ(*reg.Read("trace.captured_bytes"), 10000.0);
}

TEST(ObsTraceMetricsTest, UnboundTapStillCaptures) {
  core::ScenarioConfig cfg;
  cfg.wireless.loss_probability = 0.0;
  core::WirelessScenario scenario(cfg);
  TraceTap tap(&scenario.gateway());  // No BindMetrics: counters optional.

  apps::BulkSink sink(&scenario.mobile_host(), 80);
  apps::BulkSender sender(&scenario.wired_host(), scenario.mobile_addr(), 80,
                          apps::PatternPayload(2000));
  scenario.sim().RunFor(10 * sim::kSecond);
  EXPECT_GT(tap.Count(), 0u);
  EXPECT_FALSE(tap.Dump().empty());
}

}  // namespace
}  // namespace comma::net

// DNS codec suite: encode/decode round trips, compression-pointer
// following with the loop guard, and malformed-input rejection.
#include "src/reassembly/dns_codec.h"

#include <gtest/gtest.h>

namespace comma::reassembly {
namespace {

TEST(DnsCodecTest, QueryRoundTrip) {
  DnsMessage q;
  q.id = 0x1234;
  q.flags = kDnsFlagRecursionDesired;
  q.questions.push_back({"host.example", kDnsTypeA, kDnsClassIn});

  DnsMessage back;
  ASSERT_TRUE(DecodeDnsMessage(EncodeDnsMessage(q), &back));
  EXPECT_EQ(back.id, 0x1234);
  EXPECT_FALSE(back.is_response());
  ASSERT_EQ(back.questions.size(), 1u);
  EXPECT_EQ(back.questions[0].name, "host.example");
  EXPECT_EQ(back.questions[0].qtype, kDnsTypeA);
  EXPECT_TRUE(back.answers.empty());
}

TEST(DnsCodecTest, ResponseWithAnswersRoundTrip) {
  DnsMessage r;
  r.id = 7;
  r.flags = kDnsFlagResponse | kDnsFlagRecursionDesired;
  r.questions.push_back({"a.b.c", kDnsTypeA, kDnsClassIn});
  DnsRecord rec;
  rec.name = "a.b.c";
  rec.ttl = 300;
  rec.rdata = {10, 1, 2, 3};
  r.answers.push_back(rec);
  r.answers.push_back(rec);

  DnsMessage back;
  ASSERT_TRUE(DecodeDnsMessage(EncodeDnsMessage(r), &back));
  EXPECT_TRUE(back.is_response());
  EXPECT_EQ(back.rcode(), 0u);
  ASSERT_EQ(back.answers.size(), 2u);
  EXPECT_EQ(back.answers[0].name, "a.b.c");
  EXPECT_EQ(back.answers[0].ttl, 300u);
  EXPECT_EQ(back.answers[0].rdata, (util::Bytes{10, 1, 2, 3}));
}

TEST(DnsCodecTest, RcodeSurvivesRoundTrip) {
  DnsMessage r;
  r.flags = kDnsFlagResponse | kDnsRcodeNameError;
  DnsMessage back;
  ASSERT_TRUE(DecodeDnsMessage(EncodeDnsMessage(r), &back));
  EXPECT_EQ(back.rcode(), kDnsRcodeNameError);
}

// Hand-built wire bytes: header (12 bytes) + one question whose name uses a
// compression pointer back into a previously decoded name.
TEST(DnsCodecTest, BackwardsCompressionPointerIsFollowed) {
  util::Bytes wire = {
      0x00, 0x01,  // id
      0x84, 0x00,  // flags: response
      0x00, 0x01,  // qdcount
      0x00, 0x01,  // ancount
      0x00, 0x00, 0x00, 0x00,  // ns/ar
      // Question at offset 12: "ab.cd"
      2, 'a', 'b', 2, 'c', 'd', 0,
      0x00, 0x01, 0x00, 0x01,  // qtype A, qclass IN
      // Answer name: pointer to offset 12.
      0xC0, 0x0C,
      0x00, 0x01, 0x00, 0x01,              // type A, class IN
      0x00, 0x00, 0x01, 0x2C,              // ttl 300
      0x00, 0x04, 10, 0, 0, 1,             // rdlength 4 + address
  };
  DnsMessage m;
  ASSERT_TRUE(DecodeDnsMessage(wire, &m));
  ASSERT_EQ(m.answers.size(), 1u);
  EXPECT_EQ(m.answers[0].name, "ab.cd");
  EXPECT_EQ(m.questions[0].name, "ab.cd");
}

TEST(DnsCodecTest, PointerLoopIsRejected) {
  util::Bytes wire = {
      0x00, 0x01, 0x00, 0x00,
      0x00, 0x01,              // one question
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // Question name: a pointer to itself (offset 12).
      0xC0, 0x0C,
      0x00, 0x01, 0x00, 0x01,
  };
  DnsMessage m;
  EXPECT_FALSE(DecodeDnsMessage(wire, &m));
}

TEST(DnsCodecTest, TruncatedMessagesAreRejected) {
  DnsMessage q;
  q.questions.push_back({"host.example", kDnsTypeA, kDnsClassIn});
  const util::Bytes wire = EncodeDnsMessage(q);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    util::Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    DnsMessage m;
    EXPECT_FALSE(DecodeDnsMessage(prefix, &m)) << "cut=" << cut;
  }
}

TEST(DnsCodecTest, OverlongLabelIsRejected) {
  DnsMessage q;
  q.questions.push_back({std::string(64, 'x') + ".example", kDnsTypeA, kDnsClassIn});
  // Labels cap at 63 bytes: encode refuses the whole message.
  EXPECT_TRUE(EncodeDnsMessage(q).empty());
}

}  // namespace
}  // namespace comma::reassembly

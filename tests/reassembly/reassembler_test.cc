// StreamReassembler unit suite (docs/app-services.md): delivery order,
// overlap/retransmission resolution, window and buffering bounds, the
// fail-open contract, and sequence-space wrap. Suites are named Reassm* so
// the http CI job can select them (ctest -R '^Http|^Reassm|^Dns').
#include "src/reassembly/stream_reassembler.h"

#include <gtest/gtest.h>

namespace comma::reassembly {
namespace {

util::Bytes Seq(uint8_t first, size_t n) {
  util::Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>(first + i);
  }
  return b;
}

TEST(ReassmTest, InOrderDelivery) {
  StreamReassembler r;
  r.OnSyn(1000);
  EXPECT_TRUE(r.initialized());
  EXPECT_EQ(r.frontier(), 1001u);

  util::Bytes out;
  EXPECT_EQ(r.OnSegment(1001, Seq(0, 10), false, &out), 10u);
  EXPECT_EQ(r.OnSegment(1011, Seq(10, 5), false, &out), 5u);
  EXPECT_EQ(out, Seq(0, 15));
  EXPECT_EQ(r.frontier(), 1016u);
  EXPECT_EQ(r.stats().bytes_delivered, 15u);
  EXPECT_FALSE(r.failed());
}

TEST(ReassmTest, MidStreamAttachmentAdoptsFirstSeq) {
  StreamReassembler r;
  util::Bytes out;
  EXPECT_EQ(r.OnSegment(777, Seq(1, 4), false, &out), 4u);
  EXPECT_EQ(r.frontier(), 781u);
}

TEST(ReassmTest, GapBuffersThenDrains) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  // Bytes [11,21) arrive before [1,11): buffered, not delivered.
  EXPECT_EQ(r.OnSegment(11, Seq(10, 10), false, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(r.buffered_bytes(), 10u);
  // The gap filler releases everything at once.
  EXPECT_EQ(r.OnSegment(1, Seq(0, 10), false, &out), 20u);
  EXPECT_EQ(out, Seq(0, 20));
  EXPECT_EQ(r.buffered_bytes(), 0u);
  EXPECT_EQ(r.stats().gaps_filled, 1u);
}

TEST(ReassmTest, DuplicateBelowFrontierIsCounted) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(1, Seq(0, 10), false, &out);
  EXPECT_EQ(r.OnSegment(1, Seq(0, 10), false, &out), 0u);
  EXPECT_EQ(r.stats().duplicate_segments, 1u);
  EXPECT_EQ(out.size(), 10u);
}

TEST(ReassmTest, StraddlingRetransmissionDeliversOnlyNewBytes) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(1, Seq(0, 10), false, &out);
  // Retransmission covering [1,16): the first 10 bytes are old.
  EXPECT_EQ(r.OnSegment(1, Seq(0, 15), false, &out), 5u);
  EXPECT_EQ(out, Seq(0, 15));
  EXPECT_EQ(r.frontier(), 16u);
}

TEST(ReassmTest, OverlappingRetransmissionConflictKeepsFirstArrival) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  // [11,21) buffered beyond a hole.
  const util::Bytes original = Seq(100, 10);
  EXPECT_EQ(r.OnSegment(11, original, false, &out), 0u);
  // A conflicting retransmission of the same range: different bytes.
  EXPECT_EQ(r.OnSegment(11, Seq(200, 10), false, &out), 0u);
  EXPECT_EQ(r.stats().overlap_conflicts, 1u);
  // Fill the gap: the *first* arrival's bytes come out.
  r.OnSegment(1, Seq(0, 10), false, &out);
  util::Bytes expected = Seq(0, 10);
  expected.insert(expected.end(), original.begin(), original.end());
  EXPECT_EQ(out, expected);
}

TEST(ReassmTest, AgreeingOverlapIsNotAConflict) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(11, Seq(10, 10), false, &out);
  r.OnSegment(11, Seq(10, 10), false, &out);  // Identical bytes.
  EXPECT_EQ(r.stats().overlap_conflicts, 0u);
  // A partial overlap extending the buffered range buffers only the tail.
  r.OnSegment(16, Seq(15, 10), false, &out);
  EXPECT_EQ(r.buffered_bytes(), 15u);
  r.OnSegment(1, Seq(0, 10), false, &out);
  EXPECT_EQ(out, Seq(0, 25));
}

TEST(ReassmTest, OutOfWindowSegmentIsIgnored) {
  ReassemblerConfig cfg;
  cfg.max_buffered_bytes = 1024;
  StreamReassembler r(cfg);
  r.OnSyn(0);
  util::Bytes out;
  // Ends beyond frontier + 2*max_buffered: refused, not buffered, not fatal.
  EXPECT_EQ(r.OnSegment(5000, Seq(0, 100), false, &out), 0u);
  EXPECT_EQ(r.stats().out_of_window, 1u);
  EXPECT_EQ(r.buffered_bytes(), 0u);
  EXPECT_FALSE(r.failed());
  // The stream still works.
  EXPECT_EQ(r.OnSegment(1, Seq(0, 10), false, &out), 10u);
}

TEST(ReassmTest, BufferOverflowFailsOpen) {
  ReassemblerConfig cfg;
  cfg.max_buffered_bytes = 64;
  StreamReassembler r(cfg);
  r.OnSyn(0);
  util::Bytes out;
  // Two 40-byte out-of-order segments exceed the 64-byte bound.
  EXPECT_EQ(r.OnSegment(11, Seq(0, 40), false, &out), 0u);
  EXPECT_FALSE(r.failed());
  r.OnSegment(61, Seq(0, 40), false, &out);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.buffered_bytes(), 0u);  // Evicted, not retained.
  EXPECT_EQ(r.stats().buffered_evictions, 1u);
  // Failed streams deliver nothing more.
  EXPECT_EQ(r.OnSegment(1, Seq(0, 10), false, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ReassmTest, FinFinishesOnceEveryByteDelivered) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  // FIN arrives with the out-of-order tail: not finished while the hole is
  // open.
  r.OnSegment(11, Seq(10, 10), true, &out);
  EXPECT_FALSE(r.finished());
  r.OnSegment(1, Seq(0, 10), false, &out);
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(out, Seq(0, 20));
}

TEST(ReassmTest, BareFinFinishesImmediately) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(1, Seq(0, 10), false, &out);
  r.OnSegment(11, {}, true, &out);
  EXPECT_TRUE(r.finished());
}

TEST(ReassmTest, MovedFinFailsOpen) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(11, {}, true, &out);
  r.OnSegment(21, {}, true, &out);  // FIN at a different sequence number.
  EXPECT_TRUE(r.failed());
}

TEST(ReassmTest, RstTearsDown) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(11, Seq(0, 10), false, &out);
  r.OnRst();
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(ReassmTest, SequenceSpaceWrap) {
  StreamReassembler r;
  const uint32_t isn = 0xFFFFFFF0u;
  r.OnSyn(isn);
  util::Bytes out;
  // 32 bytes crossing the 2^32 boundary, second half first.
  EXPECT_EQ(r.OnSegment(isn + 17, Seq(16, 16), false, &out), 0u);
  EXPECT_EQ(r.OnSegment(isn + 1, Seq(0, 16), false, &out), 32u);
  EXPECT_EQ(out, Seq(0, 32));
  EXPECT_EQ(r.frontier(), isn + 33);  // Wrapped.
}

TEST(ReassmTest, RestoreFrontierDropsPendingBuffers) {
  StreamReassembler r;
  r.OnSyn(0);
  util::Bytes out;
  r.OnSegment(11, Seq(10, 10), false, &out);
  EXPECT_EQ(r.buffered_bytes(), 10u);
  r.RestoreFrontier(1);
  EXPECT_EQ(r.buffered_bytes(), 0u);
  EXPECT_EQ(r.frontier(), 1u);
  // The sender's retransmission from the frontier rebuilds the stream.
  EXPECT_EQ(r.OnSegment(1, Seq(0, 20), false, &out), 20u);
}

}  // namespace
}  // namespace comma::reassembly

// Incremental HTTP/1.1 parser suite: byte-at-a-time feeding, pipelining,
// chunked bodies with trailers, truncation (the link-flap case: the stream
// ends mid-message), and malformed input latching failed().
#include "src/reassembly/http_parser.h"

#include <gtest/gtest.h>

namespace comma::reassembly {
namespace {

util::Bytes B(const std::string& s) { return util::ToBytes(s); }

TEST(HttpParserTest, SimpleRequest) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.Feed(B("GET /index.html HTTP/1.1\r\nHost: origin\r\n\r\n")));
  ASSERT_TRUE(p.HasMessage());
  const HttpMessage m = p.PopMessage();
  EXPECT_EQ(m.method, "GET");
  EXPECT_EQ(m.target, "/index.html");
  EXPECT_EQ(m.version, "HTTP/1.1");
  ASSERT_NE(m.FindHeader("host"), nullptr);  // Case-insensitive.
  EXPECT_EQ(*m.FindHeader("host"), "origin");
  EXPECT_TRUE(m.body.empty());
}

TEST(HttpParserTest, ResponseWithContentLength) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed(B("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")));
  ASSERT_TRUE(p.HasMessage());
  const HttpMessage m = p.PopMessage();
  EXPECT_EQ(m.status_code, 200);
  EXPECT_EQ(m.reason, "OK");
  EXPECT_EQ(m.body, B("hello"));
  EXPECT_TRUE(m.has_content_length);
}

TEST(HttpParserTest, ByteAtATimeFeeding) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nabc";
  HttpParser p(HttpParser::Mode::kResponse);
  for (char c : wire) {
    ASSERT_TRUE(p.Feed(util::AsBytePtr(&c), 1));
  }
  ASSERT_TRUE(p.HasMessage());
  EXPECT_EQ(p.PopMessage().body, B("abc"));
}

TEST(HttpParserTest, PipelinedResponsesSplitAcrossFeeds) {
  // Two responses, the split point mid-way through the second's head —
  // exactly what TCP segmentation does to interleaved pipelined responses.
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nAAAA"
      "HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno";
  HttpParser p(HttpParser::Mode::kResponse);
  const size_t split = 55;  // Inside the second status line.
  ASSERT_TRUE(p.Feed(B(wire.substr(0, split))));
  ASSERT_TRUE(p.Feed(B(wire.substr(split))));
  ASSERT_TRUE(p.HasMessage());
  EXPECT_EQ(p.PopMessage().body, B("AAAA"));
  ASSERT_TRUE(p.HasMessage());
  const HttpMessage second = p.PopMessage();
  EXPECT_EQ(second.status_code, 404);
  EXPECT_EQ(second.body, B("no"));
  EXPECT_EQ(p.messages_parsed(), 2u);
}

TEST(HttpParserTest, ChunkedBodyWithTrailers) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed(B("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                       "4\r\nWiki\r\n5;ext=1\r\npedia\r\n0\r\nX-Sum: ok\r\n\r\n")));
  ASSERT_TRUE(p.HasMessage());
  const HttpMessage m = p.PopMessage();
  EXPECT_TRUE(m.chunked);
  EXPECT_EQ(m.body, B("Wikipedia"));
  ASSERT_NE(m.FindHeader("X-Sum"), nullptr);  // Trailer joined the headers.
}

TEST(HttpParserTest, ChunkedTruncationIsNotAMessage) {
  // The wireless link flapped mid-chunk: the stream ends inside chunk data.
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed(B("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                       "10\r\nonly-six")));
  p.FinishStream();
  EXPECT_FALSE(p.HasMessage());
  EXPECT_TRUE(p.failed());  // Truncated mid-body: the message never parsed.
}

TEST(HttpParserTest, ReadUntilCloseBody) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed(B("HTTP/1.1 200 OK\r\n\r\nstream until the end")));
  EXPECT_FALSE(p.HasMessage());  // Unbounded body: only the close ends it.
  p.FinishStream();
  ASSERT_TRUE(p.HasMessage());
  const HttpMessage m = p.PopMessage();
  EXPECT_TRUE(m.complete_on_close);
  EXPECT_EQ(m.body, B("stream until the end"));
}

TEST(HttpParserTest, BodilessStatusHasNoBody) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed(B("HTTP/1.1 304 Not Modified\r\nETag: x\r\n\r\n")));
  ASSERT_TRUE(p.HasMessage());
  EXPECT_TRUE(p.PopMessage().body.empty());
}

TEST(HttpParserTest, MalformedStartLineFails) {
  HttpParser p(HttpParser::Mode::kRequest);
  EXPECT_FALSE(p.Feed(B("this is not http\r\n\r\n")));
  EXPECT_TRUE(p.failed());
  // A failed parser stays failed.
  EXPECT_FALSE(p.Feed(B("GET / HTTP/1.1\r\n\r\n")));
}

TEST(HttpParserTest, AbsurdContentLengthFails) {
  HttpParser p(HttpParser::Mode::kResponse);
  EXPECT_FALSE(p.Feed(B("HTTP/1.1 200 OK\r\nContent-Length: 99999999999\r\n\r\n")));
  EXPECT_TRUE(p.failed());
}

TEST(HttpParserTest, PostWithBodyThenPipelinedGet) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.Feed(B("POST /up HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
                       "GET /next HTTP/1.1\r\n\r\n")));
  ASSERT_TRUE(p.HasMessage());
  EXPECT_EQ(p.PopMessage().body, B("xyz"));
  ASSERT_TRUE(p.HasMessage());
  EXPECT_EQ(p.PopMessage().target, "/next");
  EXPECT_EQ(p.pending_bytes(), 0u);
}

}  // namespace
}  // namespace comma::reassembly
